// Package sqldb is the SQLite stand-in for the data-protection case study
// (paper §VI-B, Table VI): a small in-memory SQL engine with a tokenizer,
// parser and executor supporting CREATE TABLE / INSERT / SELECT / UPDATE /
// DELETE with conjunctive WHERE clauses, and a B-tree primary-key index for
// point and range access — enough to serve the YCSB workloads the paper
// drives through its shared SQLite service.
package sqldb

import (
	"fmt"
	"strconv"
)

// Kind is a value type.
type Kind uint8

const (
	KInt Kind = iota
	KFloat
	KText
	KNull
)

// Value is one SQL scalar.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int constructs an integer value.
func Int(i int64) Value { return Value{Kind: KInt, I: i} }

// Float constructs a float value.
func Float(f float64) Value { return Value{Kind: KFloat, F: f} }

// Text constructs a text value.
func Text(s string) Value { return Value{Kind: KText, S: s} }

// Null is the SQL NULL.
func Null() Value { return Value{Kind: KNull} }

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KText:
		return v.S
	default:
		return "NULL"
	}
}

// Compare orders two values: ints and floats compare numerically, text
// lexically; NULL sorts first; mixed text/number comparison is an error in
// strict engines — here numbers sort before text (SQLite's affinity order).
func Compare(a, b Value) int {
	rank := func(v Value) int {
		switch v.Kind {
		case KNull:
			return 0
		case KInt, KFloat:
			return 1
		default:
			return 2
		}
	}
	if ra, rb := rank(a), rank(b); ra != rb {
		return ra - rb
	}
	switch a.Kind {
	case KNull:
		return 0
	case KText:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	default:
		af, bf := a.num(), b.num()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
}

func (v Value) num() float64 {
	if v.Kind == KInt {
		return float64(v.I)
	}
	return v.F
}

// coerce converts v to the column's declared kind where lossless.
func coerce(v Value, want Kind) (Value, error) {
	if v.Kind == want || v.Kind == KNull {
		return v, nil
	}
	switch {
	case v.Kind == KInt && want == KFloat:
		return Float(float64(v.I)), nil
	case v.Kind == KFloat && want == KInt && v.F == float64(int64(v.F)):
		return Int(int64(v.F)), nil
	}
	return Value{}, fmt.Errorf("sqldb: cannot store %v value %q in %v column", v.Kind, v.String(), want)
}

func (k Kind) String() string {
	switch k {
	case KInt:
		return "INT"
	case KFloat:
		return "FLOAT"
	case KText:
		return "TEXT"
	default:
		return "NULL"
	}
}
