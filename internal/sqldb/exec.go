package sqldb

import (
	"fmt"
	"sort"
)

// DB is an in-memory database.
type DB struct {
	tables map[string]*table
}

type table struct {
	name string
	cols []ColDef
	pk   int
	// rows holds row storage; deleted rows are nil.
	rows  [][]Value
	index *BTree
	live  int
}

// Result carries statement output.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// New creates an empty database.
func New() *DB { return &DB{tables: make(map[string]*table)} }

// Exec parses and executes one statement.
func (db *DB) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// MustExec is Exec for statements that must succeed (setup code).
func (db *DB) MustExec(sql string) *Result {
	r, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecStmt executes a pre-parsed statement (the fast path for prepared
// workloads like YCSB).
func (db *DB) ExecStmt(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *CreateStmt:
		return db.execCreate(s)
	case *InsertStmt:
		return db.execInsert(s)
	case *SelectStmt:
		return db.execSelect(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *DeleteStmt:
		return db.execDelete(s)
	}
	return nil, fmt.Errorf("sqldb: unknown statement type %T", st)
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", name)
	}
	return t, nil
}

func (t *table) colIndex(name string) (int, error) {
	for i, c := range t.cols {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqldb: table %s has no column %q", t.name, name)
}

func (db *DB) execCreate(s *CreateStmt) (*Result, error) {
	if _, exists := db.tables[s.Table]; exists {
		return nil, fmt.Errorf("sqldb: table %q already exists", s.Table)
	}
	if len(s.Cols) == 0 {
		return nil, fmt.Errorf("sqldb: table needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range s.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("sqldb: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	db.tables[s.Table] = &table{name: s.Table, cols: s.Cols, pk: s.PK, index: NewBTree()}
	return &Result{}, nil
}

func (db *DB) execInsert(s *InsertStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	row := make([]Value, len(t.cols))
	for i := range row {
		row[i] = Null()
	}
	if len(s.Cols) == 0 {
		if len(s.Vals) != len(t.cols) {
			return nil, fmt.Errorf("sqldb: %d values for %d columns", len(s.Vals), len(t.cols))
		}
		for i, v := range s.Vals {
			if row[i], err = coerce(v, t.cols[i].Kind); err != nil {
				return nil, err
			}
		}
	} else {
		if len(s.Cols) != len(s.Vals) {
			return nil, fmt.Errorf("sqldb: %d columns but %d values", len(s.Cols), len(s.Vals))
		}
		for i, cn := range s.Cols {
			ci, err := t.colIndex(cn)
			if err != nil {
				return nil, err
			}
			if row[ci], err = coerce(s.Vals[i], t.cols[ci].Kind); err != nil {
				return nil, err
			}
		}
	}
	key := row[t.pk]
	if key.Kind == KNull {
		return nil, fmt.Errorf("sqldb: NULL primary key")
	}
	if _, exists := t.index.Get(key); exists {
		return nil, fmt.Errorf("sqldb: duplicate primary key %s", key)
	}
	t.rows = append(t.rows, row)
	t.index.Set(key, len(t.rows)-1)
	t.live++
	return &Result{Affected: 1}, nil
}

// matchRows returns the row ids satisfying the conjunctive conditions,
// using the primary-key index for point and range predicates on the PK.
func (t *table) matchRows(where []Cond) ([]int, error) {
	// Validate and locate condition columns.
	type cc struct {
		ci int
		Cond
	}
	var conds []cc
	for _, c := range where {
		ci, err := t.colIndex(c.Col)
		if err != nil {
			return nil, err
		}
		v, err := coerce(c.Val, t.cols[ci].Kind)
		if err != nil {
			return nil, err
		}
		c.Val = v
		conds = append(conds, cc{ci: ci, Cond: c})
	}
	match := func(row []Value) bool {
		for _, c := range conds {
			if !evalCond(row[c.ci], c.Op, c.Val) {
				return false
			}
		}
		return true
	}

	// Index path: an equality on the PK resolves to at most one row.
	for _, c := range conds {
		if c.ci == t.pk && c.Op == "=" {
			id, ok := t.index.Get(c.Val)
			if !ok || t.rows[id] == nil || !match(t.rows[id]) {
				return nil, nil
			}
			return []int{id}, nil
		}
	}
	// Index path: PK range predicates bound an ordered scan.
	var lo, hi *Value
	ranged := false
	for _, c := range conds {
		if c.ci != t.pk {
			continue
		}
		v := c.Val
		switch c.Op {
		case ">", ">=":
			lo, ranged = &v, true
		case "<", "<=":
			hi, ranged = &v, true
		}
	}
	var ids []int
	if ranged {
		t.index.ScanRange(lo, hi, func(_ Value, id int) bool {
			if t.rows[id] != nil && match(t.rows[id]) {
				ids = append(ids, id)
			}
			return true
		})
		return ids, nil
	}
	// Full scan.
	for id, row := range t.rows {
		if row != nil && match(row) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

func evalCond(a Value, op string, b Value) bool {
	if a.Kind == KNull || b.Kind == KNull {
		return false // SQL three-valued logic: NULL compares unknown
	}
	c := Compare(a, b)
	switch op {
	case "=":
		return c == 0
	case "<":
		return c < 0
	case ">":
		return c > 0
	case "<=":
		return c <= 0
	case ">=":
		return c >= 0
	case "!=", "<>":
		return c != 0
	}
	return false
}

func (db *DB) execSelect(s *SelectStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	ids, err := t.matchRows(s.Where)
	if err != nil {
		return nil, err
	}
	if s.Count {
		return &Result{Columns: []string{"COUNT(*)"}, Rows: [][]Value{{Int(int64(len(ids)))}}}, nil
	}
	// Projection.
	proj := make([]int, 0, len(t.cols))
	var names []string
	if s.Cols == nil {
		for i, c := range t.cols {
			proj = append(proj, i)
			names = append(names, c.Name)
		}
	} else {
		for _, cn := range s.Cols {
			ci, err := t.colIndex(cn)
			if err != nil {
				return nil, err
			}
			proj = append(proj, ci)
			names = append(names, cn)
		}
	}
	if s.OrderBy != "" {
		oi, err := t.colIndex(s.OrderBy)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(ids, func(a, b int) bool {
			c := Compare(t.rows[ids[a]][oi], t.rows[ids[b]][oi])
			if s.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if s.Limit >= 0 && len(ids) > s.Limit {
		ids = ids[:s.Limit]
	}
	res := &Result{Columns: names}
	for _, id := range ids {
		out := make([]Value, len(proj))
		for i, ci := range proj {
			out[i] = t.rows[id][ci]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (db *DB) execUpdate(s *UpdateStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	ids, err := t.matchRows(s.Where)
	if err != nil {
		return nil, err
	}
	type setOp struct {
		ci int
		v  Value
	}
	var sets []setOp
	for _, st := range s.Sets {
		ci, err := t.colIndex(st.Col)
		if err != nil {
			return nil, err
		}
		v, err := coerce(st.Val, t.cols[ci].Kind)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{ci: ci, v: v})
	}
	for _, id := range ids {
		for _, so := range sets {
			if so.ci == t.pk {
				// Primary-key update: maintain the index.
				old := t.rows[id][t.pk]
				if Compare(old, so.v) != 0 {
					if _, exists := t.index.Get(so.v); exists {
						return nil, fmt.Errorf("sqldb: duplicate primary key %s", so.v)
					}
					t.index.Delete(old)
					t.index.Set(so.v, id)
				}
			}
			t.rows[id][so.ci] = so.v
		}
	}
	return &Result{Affected: len(ids)}, nil
}

func (db *DB) execDelete(s *DeleteStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	ids, err := t.matchRows(s.Where)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		t.index.Delete(t.rows[id][t.pk])
		t.rows[id] = nil
		t.live--
	}
	return &Result{Affected: len(ids)}, nil
}

// NumRows reports the live row count of a table (tests, stats).
func (db *DB) NumRows(tableName string) (int, error) {
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return t.live, nil
}
