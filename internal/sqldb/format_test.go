package sqldb

import (
	"testing"
	"testing/quick"
)

func TestFormatRoundTrip(t *testing.T) {
	cases := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT)",
		"INSERT INTO t VALUES (1, 'a''b', 2.5)",
		"INSERT INTO t (id, name) VALUES (1, 'x')",
		"SELECT * FROM t",
		"SELECT COUNT(*) FROM t WHERE id > 3",
		"SELECT name, score FROM t WHERE id >= 1 AND name != 'q' ORDER BY score DESC LIMIT 5",
		"UPDATE t SET name = 'y', score = 1.0 WHERE id = 2",
		"DELETE FROM t WHERE score <= 0.5",
	}
	for _, sql := range cases {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		out, err := FormatStmt(st)
		if err != nil {
			t.Fatalf("format %q: %v", sql, err)
		}
		st2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", out, sql, err)
		}
		out2, err := FormatStmt(st2)
		if err != nil {
			t.Fatal(err)
		}
		if out != out2 {
			t.Fatalf("format not a fixed point: %q vs %q", out, out2)
		}
	}
}

// Property: formatting any INSERT with arbitrary text survives a
// parse/format round trip with the value intact.
func TestFormatTextProperty(t *testing.T) {
	f := func(s string) bool {
		// The lexer operates on bytes; restrict to valid single-byte text.
		clean := make([]byte, 0, len(s))
		for _, b := range []byte(s) {
			if b >= 0x20 && b < 0x7f {
				clean = append(clean, b)
			}
		}
		st := &InsertStmt{Table: "t", Vals: []Value{Int(1), Text(string(clean))}}
		sql, err := FormatStmt(st)
		if err != nil {
			return false
		}
		back, err := Parse(sql)
		if err != nil {
			return false
		}
		ins, ok := back.(*InsertStmt)
		return ok && len(ins.Vals) == 2 && ins.Vals[1].S == string(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
