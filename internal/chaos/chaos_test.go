package chaos

import (
	"errors"
	"testing"
)

// Same seed, same config → identical firing sequence.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Sites: map[Site]SiteConfig{
		SiteIPCDrop:  {Prob: 0.3},
		SiteEPCAlloc: {Prob: 0.1},
	}}
	a := New(cfg, nil)
	b := New(cfg, nil)
	for i := 0; i < 1000; i++ {
		site := SiteIPCDrop
		if i%3 == 0 {
			site = SiteEPCAlloc
		}
		if a.Fire(site) != b.Fire(site) {
			t.Fatalf("divergence at draw %d", i)
		}
	}
	if a.Rand(100) != b.Rand(100) {
		t.Fatalf("Rand diverged after identical draw sequence")
	}
}

func TestBudget(t *testing.T) {
	inj := New(Config{Seed: 7, Sites: map[Site]SiteConfig{
		SiteDRAMBitFlip: {Prob: 1, Budget: 3},
	}}, nil)
	fired := 0
	for i := 0; i < 100; i++ {
		if inj.Fire(SiteDRAMBitFlip) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("budget 3 but fired %d times", fired)
	}
	if got := inj.Injected(SiteDRAMBitFlip); got != 3 {
		t.Fatalf("Injected = %d, want 3", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Fire(SiteAEXStorm) {
		t.Fatal("nil injector fired")
	}
	if err := inj.FireErr(SiteEPCAlloc, true); err != nil {
		t.Fatalf("nil injector produced error %v", err)
	}
	inj.Recovered(SiteIPCDrop) // must not panic
	if inj.RecoverFrom(errors.New("x")) {
		t.Fatal("nil injector credited a recovery")
	}
	if inj.Rand(10) != 0 || inj.Burst(SiteSlowCore) != 1 {
		t.Fatal("nil injector defaults wrong")
	}
	if len(inj.Stats()) != 0 {
		t.Fatal("nil injector has stats")
	}
}

func TestProbabilityRoughlyCalibrated(t *testing.T) {
	inj := New(Config{Seed: 99, Sites: map[Site]SiteConfig{
		SiteIPCCorrupt: {Prob: 0.25},
	}}, nil)
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if inj.Fire(SiteIPCCorrupt) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("p=0.25 fired at rate %.3f", frac)
	}
}

func TestUnconfiguredSiteNeverFires(t *testing.T) {
	inj := New(Config{Seed: 1, Sites: map[Site]SiteConfig{
		SiteIPCDrop: {Prob: 1},
	}}, nil)
	for i := 0; i < 100; i++ {
		if inj.Fire(SiteSlowCore) {
			t.Fatal("unconfigured site fired")
		}
	}
}

func TestInjectedErrorClassification(t *testing.T) {
	tr := &Injected{Site: SiteEPCAlloc, Transient: true}
	if !errors.Is(tr, ErrTransient) {
		t.Fatal("transient injected error does not match ErrTransient")
	}
	perm := &Injected{Site: SiteDRAMBitFlip, Transient: false}
	if errors.Is(perm, ErrTransient) {
		t.Fatal("permanent injected error matches ErrTransient")
	}

	inj := New(Config{Seed: 5, Sites: map[Site]SiteConfig{
		SiteEPCAlloc: {Prob: 1},
	}}, nil)
	err := inj.FireErr(SiteEPCAlloc, true)
	if err == nil {
		t.Fatal("p=1 FireErr returned nil")
	}
	if !inj.RecoverFrom(err) {
		t.Fatal("RecoverFrom rejected its own injected error")
	}
	st := inj.Stats()["epc_alloc"]
	if st.Injected != 1 || st.Recovered != 1 {
		t.Fatalf("stats = %+v, want 1/1", st)
	}
}

func TestBurst(t *testing.T) {
	inj := New(Config{Seed: 3, Sites: map[Site]SiteConfig{
		SiteAEXStorm: {Prob: 1, Burst: 5},
	}}, nil)
	if got := inj.Burst(SiteAEXStorm); got != 5 {
		t.Fatalf("Burst = %d, want 5", got)
	}
	if got := inj.Burst(SiteIPCDup); got != 1 {
		t.Fatalf("default Burst = %d, want 1", got)
	}
}

func TestMixIsDeterministic(t *testing.T) {
	if Mix(123) != Mix(123) {
		t.Fatal("Mix not deterministic")
	}
	if Mix(1) == Mix(2) {
		t.Fatal("Mix(1) == Mix(2): suspicious")
	}
}
