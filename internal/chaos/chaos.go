// Package chaos is the deterministic, seed-driven runtime fault injector.
//
// The rest of the stack carries cheap hook points — one nil check plus, when
// an injector is installed, one PRNG draw — at the places where real systems
// fail: the MEE's DRAM fetch path (bit flips), the kernel driver's EPC
// allocator (pressure failures), the IPC router (drop/duplicate/corrupt),
// and the core's memory-access loop (spurious interrupt storms, stalled
// cores). Every decision derives from a splitmix64 stream seeded by the
// caller, so a failing soak run replays exactly from its seed.
//
// A nil *Injector is a valid injector that never fires; hook points call
// methods on it directly without guarding, keeping the disabled path free.
package chaos

import (
	"errors"
	"fmt"
	"sync"

	"nestedenclave/internal/trace"
)

// Site identifies one fault-injection hook point in the stack.
type Site int

const (
	// SiteDRAMBitFlip flips one ciphertext bit of a protected line as the
	// MEE fetches it from DRAM — a physical memory disturbance the
	// integrity tree detects as a machine check.
	SiteDRAMBitFlip Site = iota
	// SiteEPCAlloc fails an EPC allocation in the kernel driver as if the
	// EPC were exhausted. Transient: retry after backoff recovers.
	SiteEPCAlloc
	// SiteIPCDrop silently discards an IPC message in the kernel router.
	SiteIPCDrop
	// SiteIPCDup delivers an IPC message twice.
	SiteIPCDup
	// SiteIPCCorrupt flips one bit of an IPC message in flight.
	SiteIPCCorrupt
	// SiteAEXStorm delivers spurious interrupts (AEX + ERESUME round
	// trips) to a core executing in enclave mode.
	SiteAEXStorm
	// SiteSlowCore stalls a core's memory access for a burst of simulated
	// cycles (frequency throttling, scheduling jitter).
	SiteSlowCore

	numSites
)

// NumSites is the number of defined fault sites.
const NumSites = int(numSites)

var siteNames = [...]string{
	SiteDRAMBitFlip: "dram_bit_flip",
	SiteEPCAlloc:    "epc_alloc",
	SiteIPCDrop:     "ipc_drop",
	SiteIPCDup:      "ipc_dup",
	SiteIPCCorrupt:  "ipc_corrupt",
	SiteAEXStorm:    "aex_storm",
	SiteSlowCore:    "slow_core",
}

func (s Site) String() string {
	if s >= 0 && int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// ErrTransient classifies faults a caller should retry:
// errors.Is(err, chaos.ErrTransient) reports whether err (or anything it
// wraps) is expected to succeed on a later attempt.
var ErrTransient = errors.New("transient fault")

// Injected is the typed error attached to faults injected at error-returning
// sites. It matches ErrTransient (via errors.Is) when the site is one retry
// can cure.
type Injected struct {
	Site      Site
	Transient bool
}

func (e *Injected) Error() string {
	return fmt.Sprintf("chaos: injected %s fault", e.Site)
}

// Is lets errors.Is(err, ErrTransient) classify injected faults.
func (e *Injected) Is(target error) bool {
	return target == ErrTransient && e.Transient
}

// SiteConfig tunes one fault site.
type SiteConfig struct {
	// Prob is the firing probability per hook evaluation, in [0, 1].
	Prob float64
	// Budget caps the total number of injections at this site; 0 means
	// unlimited.
	Budget int
	// Burst is the number of consecutive events per firing (the length of
	// an AEX storm, the cycles multiplier of a stall); 0 means 1.
	Burst int
}

// Config seeds an injector. Sites without an entry never fire.
type Config struct {
	Seed  uint64
	Sites map[Site]SiteConfig
}

// SiteStats is the per-site injection/recovery tally.
type SiteStats struct {
	Injected  int64
	Recovered int64
}

// Injector decides, deterministically from its seed, whether each hook
// evaluation fires. Safe for concurrent use; a nil *Injector never fires.
type Injector struct {
	mu    sync.Mutex
	state uint64
	sites [numSites]siteState
	rec   *trace.Recorder
}

type siteState struct {
	threshold uint64 // Prob scaled to the uint64 range; 0 = never
	budget    int    // remaining injections; -1 = unlimited
	burst     int
	injected  int64
	recovered int64
}

// New builds an injector. rec may be nil; when set it is charged an
// EvChaosInject/EvChaosRecover record per event (detail = site), so the
// stats tooling reports injection activity alongside architectural counters.
func New(cfg Config, rec *trace.Recorder) *Injector {
	inj := &Injector{state: cfg.Seed, rec: rec}
	for i := range inj.sites {
		inj.sites[i].budget = -1
		inj.sites[i].burst = 1
	}
	for s, sc := range cfg.Sites {
		if s < 0 || int(s) >= NumSites {
			continue
		}
		st := &inj.sites[s]
		switch {
		case sc.Prob >= 1:
			st.threshold = ^uint64(0)
		case sc.Prob > 0:
			st.threshold = uint64(sc.Prob * float64(1<<63) * 2)
		}
		if sc.Budget > 0 {
			st.budget = sc.Budget
		}
		if sc.Burst > 0 {
			st.burst = sc.Burst
		}
	}
	return inj
}

// Mix is one splitmix64 step: the deterministic PRNG the injector (and the
// SDK's retry jitter) draws from.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next draws one PRNG value. Caller holds inj.mu.
func (inj *Injector) next() uint64 {
	inj.state += 0x9e3779b97f4a7c15
	z := inj.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fire reports whether the site fires at this hook evaluation, consuming one
// PRNG draw and one budget unit when it does. Nil-safe.
func (inj *Injector) Fire(site Site) bool {
	return inj.FireOn(site, trace.NoCore)
}

// FireOn is Fire for hook points that know the core they run on: the
// injection record is charged on that core, which attaches it to the
// innermost span open there — a soak trace then shows which call tree each
// injected fault landed in. Hook points without a core (kernel IPC, MEE)
// use Fire; their records attach via the recorder's span hint. Nil-safe.
func (inj *Injector) FireOn(site Site, core int) bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	st := &inj.sites[site]
	if st.threshold == 0 || st.budget == 0 {
		inj.mu.Unlock()
		return false
	}
	if v := inj.next(); st.threshold != ^uint64(0) && v >= st.threshold {
		inj.mu.Unlock()
		return false
	}
	if st.budget > 0 {
		st.budget--
	}
	st.injected++
	rec := inj.rec
	inj.mu.Unlock()
	if rec != nil {
		rec.ChargeToDetail(trace.NoEID, core, trace.EvChaosInject, 0, uint64(site))
	}
	return true
}

// FireErr returns the typed injected error when the site fires, nil
// otherwise. Nil-safe.
func (inj *Injector) FireErr(site Site, transient bool) error {
	if inj.Fire(site) {
		return &Injected{Site: site, Transient: transient}
	}
	return nil
}

// Recovered credits one recovery to the site: an injected fault that a
// retry, retransmit, resume or restart cured. Nil-safe.
func (inj *Injector) Recovered(site Site) {
	inj.RecoveredOn(site, trace.NoCore)
}

// RecoveredOn is Recovered with core context, the FireOn counterpart: the
// recovery record attaches to the core's innermost open span. Nil-safe.
func (inj *Injector) RecoveredOn(site Site, core int) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.sites[site].recovered++
	rec := inj.rec
	inj.mu.Unlock()
	if rec != nil {
		rec.ChargeToDetail(trace.NoEID, core, trace.EvChaosRecover, 0, uint64(site))
	}
}

// RecoverFrom credits a recovery for the site that produced err, when err
// carries an injected-fault marker. Returns whether a site was credited.
// Nil-safe (in both arguments).
func (inj *Injector) RecoverFrom(err error) bool {
	if inj == nil || err == nil {
		return false
	}
	var ie *Injected
	if !errors.As(err, &ie) {
		return false
	}
	inj.Recovered(ie.Site)
	return true
}

// Rand returns a deterministic value in [0, n). A nil injector (or n == 0)
// returns 0.
func (inj *Injector) Rand(n uint64) uint64 {
	if inj == nil || n == 0 {
		return 0
	}
	inj.mu.Lock()
	v := inj.next()
	inj.mu.Unlock()
	return v % n
}

// Burst returns the configured burst length for the site (at least 1).
func (inj *Injector) Burst(site Site) int {
	if inj == nil {
		return 1
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.sites[site].burst
}

// Injected returns how many times the site has fired.
func (inj *Injector) Injected(site Site) int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.sites[site].injected
}

// RecoveredCount returns how many recoveries have been credited to the site.
func (inj *Injector) RecoveredCount(site Site) int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.sites[site].recovered
}

// Stats snapshots every site's injection/recovery tally, keyed by site name.
// Sites with no activity are omitted.
func (inj *Injector) Stats() map[string]SiteStats {
	out := make(map[string]SiteStats)
	if inj == nil {
		return out
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.sites {
		st := &inj.sites[i]
		if st.injected != 0 || st.recovered != 0 {
			out[Site(i).String()] = SiteStats{Injected: st.injected, Recovered: st.recovered}
		}
	}
	return out
}
