// Package pt models the OS-controlled page tables of a process.
//
// Crucially, the page table is *untrusted*: SGX's threat model lets the
// kernel write arbitrary translations, remap enclave pages, alias two
// virtual pages to one frame, or mark pages non-present at will. The access
// validator (package sgx) re-checks every translation against the EPCM
// during TLB-miss handling precisely because nothing here can be trusted.
// The adversarial kernel in package kos manipulates these tables directly in
// the attack reproductions.
package pt

import (
	"sync"
	"sync/atomic"

	"nestedenclave/internal/isa"
)

// PTE is a page table entry.
type PTE struct {
	PPN     uint64
	Perms   isa.Perm
	Present bool
}

// Table is a single-level map-backed page table for one address space.
// Walks happen on every TLB miss from any core while the kernel remaps or
// evicts pages from another, so the structure is copy-on-write: readers
// atomically load an immutable snapshot (a page-table walk reads a
// consistent radix tree on real hardware, too), and the rare writers —
// mmap/munmap/eviction — copy, mutate, and republish under a writer lock.
type Table struct {
	mu      sync.Mutex   // serializes writers (the kernel's mmap lock)
	entries atomic.Value // map[uint64]PTE, immutable once published
}

// New creates an empty page table.
func New() *Table {
	t := &Table{}
	t.entries.Store(map[uint64]PTE{})
	return t
}

func (t *Table) snapshot() map[uint64]PTE {
	return t.entries.Load().(map[uint64]PTE)
}

// mutate runs f on a private copy of the entries and publishes the result.
func (t *Table) mutate(f func(map[uint64]PTE)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.snapshot()
	next := make(map[uint64]PTE, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	f(next)
	t.entries.Store(next)
}

// Map installs a translation from the virtual page containing v to the
// physical page containing p with the given permissions.
func (t *Table) Map(v isa.VAddr, p isa.PAddr, perms isa.Perm) {
	t.mutate(func(m map[uint64]PTE) {
		m[v.VPN()] = PTE{PPN: p.PPN(), Perms: perms, Present: true}
	})
}

// Unmap removes the translation for the virtual page containing v.
func (t *Table) Unmap(v isa.VAddr) {
	t.mutate(func(m map[uint64]PTE) {
		delete(m, v.VPN())
	})
}

// MarkNotPresent keeps the entry but clears its present bit (the state the
// kernel sets while an EPC page is evicted).
func (t *Table) MarkNotPresent(v isa.VAddr) {
	t.mutate(func(m map[uint64]PTE) {
		if e, ok := m[v.VPN()]; ok {
			e.Present = false
			m[v.VPN()] = e
		}
	})
}

// Protect changes the permissions of an existing mapping.
func (t *Table) Protect(v isa.VAddr, perms isa.Perm) {
	t.mutate(func(m map[uint64]PTE) {
		if e, ok := m[v.VPN()]; ok {
			e.Perms = perms
			m[v.VPN()] = e
		}
	})
}

// Walk performs the page-table walk for v. ok is false when no entry exists;
// a present=false entry is returned with ok true so the fault handler can
// distinguish "never mapped" from "paged out".
func (t *Table) Walk(v isa.VAddr) (PTE, bool) {
	e, ok := t.snapshot()[v.VPN()]
	return e, ok
}

// Lookup returns the present translation for v, if any.
func (t *Table) Lookup(v isa.VAddr) (PTE, bool) {
	e, ok := t.snapshot()[v.VPN()]
	if !ok || !e.Present {
		return PTE{}, false
	}
	return e, true
}

// Translate resolves a full virtual address to a physical address using the
// present mapping, preserving the page offset.
func (t *Table) Translate(v isa.VAddr) (isa.PAddr, bool) {
	e, ok := t.Lookup(v)
	if !ok {
		return 0, false
	}
	return isa.PAddr(e.PPN<<isa.PageShift | v.Offset()), true
}

// Len returns the number of entries (present or not).
func (t *Table) Len() int { return len(t.snapshot()) }

// VPNs returns all mapped virtual page numbers (for audits).
func (t *Table) VPNs() []uint64 {
	snap := t.snapshot()
	out := make([]uint64, 0, len(snap))
	for vpn := range snap {
		out = append(out, vpn)
	}
	return out
}
