// Package pt models the OS-controlled page tables of a process.
//
// Crucially, the page table is *untrusted*: SGX's threat model lets the
// kernel write arbitrary translations, remap enclave pages, alias two
// virtual pages to one frame, or mark pages non-present at will. The access
// validator (package sgx) re-checks every translation against the EPCM
// during TLB-miss handling precisely because nothing here can be trusted.
// The adversarial kernel in package kos manipulates these tables directly in
// the attack reproductions.
package pt

import (
	"nestedenclave/internal/isa"
)

// PTE is a page table entry.
type PTE struct {
	PPN     uint64
	Perms   isa.Perm
	Present bool
}

// Table is a single-level map-backed page table for one address space.
// Not safe for concurrent use; the kernel serializes updates.
type Table struct {
	entries map[uint64]PTE
}

// New creates an empty page table.
func New() *Table { return &Table{entries: make(map[uint64]PTE)} }

// Map installs a translation from the virtual page containing v to the
// physical page containing p with the given permissions.
func (t *Table) Map(v isa.VAddr, p isa.PAddr, perms isa.Perm) {
	t.entries[v.VPN()] = PTE{PPN: p.PPN(), Perms: perms, Present: true}
}

// Unmap removes the translation for the virtual page containing v.
func (t *Table) Unmap(v isa.VAddr) { delete(t.entries, v.VPN()) }

// MarkNotPresent keeps the entry but clears its present bit (the state the
// kernel sets while an EPC page is evicted).
func (t *Table) MarkNotPresent(v isa.VAddr) {
	if e, ok := t.entries[v.VPN()]; ok {
		e.Present = false
		t.entries[v.VPN()] = e
	}
}

// Protect changes the permissions of an existing mapping.
func (t *Table) Protect(v isa.VAddr, perms isa.Perm) {
	if e, ok := t.entries[v.VPN()]; ok {
		e.Perms = perms
		t.entries[v.VPN()] = e
	}
}

// Walk performs the page-table walk for v. ok is false when no entry exists;
// a present=false entry is returned with ok true so the fault handler can
// distinguish "never mapped" from "paged out".
func (t *Table) Walk(v isa.VAddr) (PTE, bool) {
	e, ok := t.entries[v.VPN()]
	return e, ok
}

// Lookup returns the present translation for v, if any.
func (t *Table) Lookup(v isa.VAddr) (PTE, bool) {
	e, ok := t.entries[v.VPN()]
	if !ok || !e.Present {
		return PTE{}, false
	}
	return e, true
}

// Translate resolves a full virtual address to a physical address using the
// present mapping, preserving the page offset.
func (t *Table) Translate(v isa.VAddr) (isa.PAddr, bool) {
	e, ok := t.Lookup(v)
	if !ok {
		return 0, false
	}
	return isa.PAddr(e.PPN<<isa.PageShift | v.Offset()), true
}

// Len returns the number of entries (present or not).
func (t *Table) Len() int { return len(t.entries) }

// VPNs returns all mapped virtual page numbers (for audits).
func (t *Table) VPNs() []uint64 {
	out := make([]uint64, 0, len(t.entries))
	for vpn := range t.entries {
		out = append(out, vpn)
	}
	return out
}
