package pt

import (
	"testing"

	"nestedenclave/internal/isa"
)

func TestMapWalkTranslate(t *testing.T) {
	tab := New()
	tab.Map(0x1000, 0x5000, isa.PermRW)
	e, ok := tab.Walk(0x1234)
	if !ok || !e.Present || e.PPN != 5 || e.Perms != isa.PermRW {
		t.Fatalf("walk: %+v ok=%v", e, ok)
	}
	pa, ok := tab.Translate(0x1234)
	if !ok || pa != 0x5234 {
		t.Fatalf("translate = %#x ok=%v", uint64(pa), ok)
	}
	if _, ok := tab.Walk(0x9000); ok {
		t.Fatal("unmapped address walked")
	}
}

func TestUnmapAndNotPresent(t *testing.T) {
	tab := New()
	tab.Map(0x1000, 0x5000, isa.PermR)
	tab.Unmap(0x1000)
	if _, ok := tab.Walk(0x1000); ok {
		t.Fatal("unmapped entry still present")
	}
	tab.Map(0x2000, 0x6000, isa.PermR)
	tab.MarkNotPresent(0x2000)
	e, ok := tab.Walk(0x2000)
	if !ok || e.Present {
		t.Fatalf("not-present: %+v ok=%v (want entry with Present=false)", e, ok)
	}
	if _, ok := tab.Lookup(0x2000); ok {
		t.Fatal("Lookup returned a not-present entry")
	}
	if _, ok := tab.Translate(0x2000); ok {
		t.Fatal("Translate used a not-present entry")
	}
	// MarkNotPresent on a missing entry is a no-op.
	tab.MarkNotPresent(0xdead000)
}

func TestProtect(t *testing.T) {
	tab := New()
	tab.Map(0x1000, 0x5000, isa.PermRWX)
	tab.Protect(0x1000, isa.PermR)
	e, _ := tab.Walk(0x1000)
	if e.Perms != isa.PermR {
		t.Fatalf("perms after protect: %v", e.Perms)
	}
	tab.Protect(0xffff000, isa.PermR) // no-op on missing entry
}

func TestLenAndVPNs(t *testing.T) {
	tab := New()
	tab.Map(0x1000, 0x5000, isa.PermR)
	tab.Map(0x2000, 0x6000, isa.PermR)
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	vpns := tab.VPNs()
	if len(vpns) != 2 {
		t.Fatalf("VPNs = %v", vpns)
	}
}

// TestKernelRemap documents the untrusted nature: the kernel can silently
// redirect a virtual page to a different frame; the page table obliges.
func TestKernelRemap(t *testing.T) {
	tab := New()
	tab.Map(0x1000, 0x5000, isa.PermRW)
	tab.Map(0x1000, 0x7000, isa.PermRW)
	pa, _ := tab.Translate(0x1000)
	if pa != 0x7000 {
		t.Fatalf("remap not applied: %#x", uint64(pa))
	}
}
