package isa

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	v := VAddr(0x1234_5678)
	if got := v.PageBase(); got != 0x1234_5000 {
		t.Errorf("PageBase = %#x", uint64(got))
	}
	if got := v.Offset(); got != 0x678 {
		t.Errorf("Offset = %#x", got)
	}
	if got := v.VPN(); got != 0x12345 {
		t.Errorf("VPN = %#x", got)
	}
	p := PAddr(0x9abc_def0)
	if got := p.LineBase(); got != 0x9abc_dec0 {
		t.Errorf("LineBase = %#x", uint64(got))
	}
	if got := p.PPN(); got != 0x9abcd {
		t.Errorf("PPN = %#x", got)
	}
}

func TestAddressIdentities(t *testing.T) {
	f := func(x uint64) bool {
		v := VAddr(x)
		return uint64(v.PageBase())+v.Offset() == x &&
			v.VPN() == uint64(v.PageBase())>>PageShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x uint64) bool {
		p := PAddr(x)
		return uint64(p.LineBase())%LineSize == 0 && uint64(p.LineBase()) <= x
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestPermAllows(t *testing.T) {
	cases := []struct {
		p    Perm
		a    Access
		want bool
	}{
		{PermR, Read, true},
		{PermR, Write, false},
		{PermR, Execute, false},
		{PermRW, Write, true},
		{PermRW, Execute, false},
		{PermRX, Execute, true},
		{PermRX, Write, false},
		{PermRWX, Read, true},
		{PermRWX, Write, true},
		{PermRWX, Execute, true},
		{0, Read, false},
	}
	for _, c := range cases {
		if got := c.p.Allows(c.a); got != c.want {
			t.Errorf("%v.Allows(%v) = %v, want %v", c.p, c.a, got, c.want)
		}
	}
}

func TestPermString(t *testing.T) {
	if s := PermRWX.String(); s != "rwx" {
		t.Errorf("PermRWX = %q", s)
	}
	if s := PermR.String(); s != "r--" {
		t.Errorf("PermR = %q", s)
	}
	if s := Perm(0).String(); s != "---" {
		t.Errorf("zero perm = %q", s)
	}
}

func TestFaults(t *testing.T) {
	f := PF(0x1000, Write, "test %d", 42)
	if f.Class != FaultPF || f.Addr != 0x1000 || f.Op != Write {
		t.Errorf("PF fields: %+v", f)
	}
	if !IsFault(f, FaultPF) {
		t.Error("IsFault(PF, FaultPF) = false")
	}
	if IsFault(f, FaultGP) {
		t.Error("IsFault(PF, FaultGP) = true")
	}
	if IsFault(errors.New("plain"), FaultPF) {
		t.Error("IsFault(plain error) = true")
	}
	g := GP("bad %s", "thing")
	if g.Class != FaultGP {
		t.Errorf("GP class = %v", g.Class)
	}
	m := MC("tamper")
	if m.Class != FaultMC {
		t.Errorf("MC class = %v", m.Class)
	}
	for _, e := range []error{f, g, m} {
		if e.Error() == "" {
			t.Error("empty fault message")
		}
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Execute.String() != "execute" {
		t.Error("Access stringer")
	}
	if PTSECS.String() != "PT_SECS" || PTReg.String() != "PT_REG" {
		t.Error("PageType stringer")
	}
	if FaultGP.String() != "#GP" || FaultPF.String() != "#PF" || FaultMC.String() != "#MC" {
		t.Error("FaultClass stringer")
	}
}
