// Package isa defines the architectural constants shared by the simulated
// SGX machine: page and cacheline geometry, access kinds, page permissions,
// enclave page types, and the fault model raised by the access-validation
// hardware.
//
// The package is dependency-free; every other machine package builds on it.
package isa

import "fmt"

// Architectural geometry. The values follow x86/SGX: 4 KiB pages and 64-byte
// cachelines (the MEE encryption granule).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1

	LineShift = 6
	LineSize  = 1 << LineShift
	LineMask  = LineSize - 1

	// EEXTEND measures enclave content in 256-byte chunks.
	ExtendChunk = 256
)

// VAddr is a virtual address in a process address space.
type VAddr uint64

// PAddr is a physical address in the simulated DRAM.
type PAddr uint64

// PageBase returns the address rounded down to its page base.
func (v VAddr) PageBase() VAddr { return v &^ VAddr(PageMask) }

// Offset returns the in-page offset of the address.
func (v VAddr) Offset() uint64 { return uint64(v) & PageMask }

// VPN returns the virtual page number.
func (v VAddr) VPN() uint64 { return uint64(v) >> PageShift }

// PageBase returns the address rounded down to its page base.
func (p PAddr) PageBase() PAddr { return p &^ PAddr(PageMask) }

// Offset returns the in-page offset of the address.
func (p PAddr) Offset() uint64 { return uint64(p) & PageMask }

// PPN returns the physical page number.
func (p PAddr) PPN() uint64 { return uint64(p) >> PageShift }

// LineBase returns the address rounded down to its cacheline base.
func (p PAddr) LineBase() PAddr { return p &^ PAddr(LineMask) }

// Access describes the kind of a memory access, used both by the page
// permission check and by the enclave access validator.
type Access uint8

const (
	Read Access = iota
	Write
	Execute
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("access(%d)", uint8(a))
}

// Perm is a page permission bitmask.
type Perm uint8

const (
	PermR Perm = 1 << iota
	PermW
	PermX

	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// Allows reports whether the permission mask admits the access kind.
func (p Perm) Allows(a Access) bool {
	switch a {
	case Read:
		return p&PermR != 0
	case Write:
		return p&PermW != 0
	case Execute:
		return p&PermX != 0
	}
	return false
}

func (p Perm) String() string {
	b := [3]byte{'-', '-', '-'}
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b[:])
}

// PageType classifies an EPC page in the EPCM, mirroring SGX's PT_* types.
type PageType uint8

const (
	// PTReg is a regular enclave data/code page.
	PTReg PageType = iota
	// PTSECS holds an enclave's SGX Enclave Control Structure.
	PTSECS
	// PTTCS holds a Thread Control Structure.
	PTTCS
	// PTVA holds version-array slots used by the EPC eviction mechanism.
	PTVA
)

func (t PageType) String() string {
	switch t {
	case PTReg:
		return "PT_REG"
	case PTSECS:
		return "PT_SECS"
	case PTTCS:
		return "PT_TCS"
	case PTVA:
		return "PT_VA"
	}
	return fmt.Sprintf("PT(%d)", uint8(t))
}

// FaultClass distinguishes the hardware exceptions the simulator raises.
type FaultClass uint8

const (
	// FaultGP is a general-protection fault (#GP): illegal instruction use,
	// invalid enclave transitions, EPCM attribute violations.
	FaultGP FaultClass = iota
	// FaultPF is a page fault (#PF): non-present translations, permission
	// violations, and aborted EPC translations.
	FaultPF
	// FaultMC models the machine-check abort raised when the MEE integrity
	// tree detects tampering of protected memory.
	FaultMC
)

func (c FaultClass) String() string {
	switch c {
	case FaultGP:
		return "#GP"
	case FaultPF:
		return "#PF"
	case FaultMC:
		return "#MC"
	}
	return fmt.Sprintf("#FAULT(%d)", uint8(c))
}

// Fault is the error type produced by the simulated hardware when an access
// or instruction is rejected. It implements error so machine operations can
// surface faults through ordinary Go error returns; the SDK layer converts
// them into asynchronous enclave exits where the architecture demands it.
type Fault struct {
	Class FaultClass
	// Addr is the faulting virtual address, when meaningful.
	Addr VAddr
	// Op is the access kind for memory faults.
	Op Access
	// Reason is a human-readable explanation used in logs and tests.
	Reason string
}

func (f *Fault) Error() string {
	if f.Reason == "" {
		return fmt.Sprintf("%v at %#x (%v)", f.Class, uint64(f.Addr), f.Op)
	}
	return fmt.Sprintf("%v at %#x (%v): %s", f.Class, uint64(f.Addr), f.Op, f.Reason)
}

// GP constructs a general-protection fault.
func GP(reason string, args ...any) *Fault {
	return &Fault{Class: FaultGP, Reason: fmt.Sprintf(reason, args...)}
}

// PF constructs a page fault at the given address.
func PF(addr VAddr, op Access, reason string, args ...any) *Fault {
	return &Fault{Class: FaultPF, Addr: addr, Op: op, Reason: fmt.Sprintf(reason, args...)}
}

// MC constructs a machine-check fault (integrity failure).
func MC(reason string, args ...any) *Fault {
	return &Fault{Class: FaultMC, Reason: fmt.Sprintf(reason, args...)}
}

// IsFault reports whether err is a simulated hardware fault of class c.
func IsFault(err error, c FaultClass) bool {
	f, ok := err.(*Fault)
	return ok && f.Class == c
}

// EID is an enclave identity. Architecturally SGX identifies an enclave by
// the physical address of its SECS page; the simulator uses a monotonically
// assigned 64-bit id with the same uniqueness property. EID 0 is reserved
// and never names an enclave ("no enclave" / OuterEID absent).
type EID uint64

// NoEnclave is the reserved null enclave identity.
const NoEnclave EID = 0
