package talloc

import "testing"

func TestExtendGrowsCapacity(t *testing.T) {
	h := New(0x1000, 64)
	if _, err := h.Alloc(128); err == nil {
		t.Fatal("oversized alloc before extend")
	}
	// Discontiguous extension (past a gap, as with reserved ELRANGE pages
	// beyond the TCS region).
	if err := h.Extend(0x3000, 256); err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a) < 0x3000 || uint64(a)+128 > 0x3000+256 {
		t.Fatalf("allocation outside extension: %#x", uint64(a))
	}
	if h.Size() != 64+256 {
		t.Fatalf("capacity %d", h.Size())
	}
	if h.FreeBytes()+h.LiveBytes() != h.Size() {
		t.Fatal("accounting broken after extend")
	}
}

func TestExtendContiguousCoalesces(t *testing.T) {
	h := New(0x1000, 64)
	if err := h.Extend(0x1040, 64); err != nil {
		t.Fatal(err)
	}
	// The two extents coalesce: one 128-byte allocation fits.
	if _, err := h.Alloc(128); err != nil {
		t.Fatalf("coalesced alloc: %v", err)
	}
}

func TestExtendRejections(t *testing.T) {
	h := New(0x1000, 64)
	if err := h.Extend(0x2000, 0); err == nil {
		t.Fatal("empty extension accepted")
	}
	// Overlapping the free pool.
	if err := h.Extend(0x1020, 64); err == nil {
		t.Fatal("overlap with free extent accepted")
	}
	// Overlapping a live allocation.
	a, _ := h.Alloc(64) // heap now fully allocated, free pool empty
	if err := h.Extend(a, 32); err == nil {
		t.Fatal("overlap with live allocation accepted")
	}
}
