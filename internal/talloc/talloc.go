// Package talloc is the trusted in-enclave heap allocator: a first-fit
// free-list allocator over a virtual address range inside an enclave's
// ELRANGE.
//
// Its purpose in this repository is fidelity of the confinement case study:
// the Heartbleed reproduction needs a heap where a freed buffer's contents
// remain adjacent to other allocations in *simulated enclave memory*, so an
// unchecked length in the heartbeat handler really over-reads neighbouring
// allocations — or faults on the protection boundary, when the victim data
// lives in an inner enclave.
//
// The allocator's bookkeeping lives natively (the metadata of a real
// allocator would live in enclave memory too; keeping it native simplifies
// the simulator without changing what an over-read can observe: payload
// bytes are written only through the enclave memory path).
package talloc

import (
	"fmt"
	"sort"

	"nestedenclave/internal/isa"
)

// Heap manages [base, base+size) of enclave virtual memory.
type Heap struct {
	base isa.VAddr
	size uint64

	// free holds non-overlapping free extents sorted by address.
	free []extent
	// live maps allocation base -> length.
	live map[isa.VAddr]uint64
}

type extent struct {
	addr isa.VAddr
	len  uint64
}

// New creates a heap over the given range.
func New(base isa.VAddr, size uint64) *Heap {
	return &Heap{
		base: base,
		size: size,
		free: []extent{{addr: base, len: size}},
		live: make(map[isa.VAddr]uint64),
	}
}

// Base returns the heap's base address.
func (h *Heap) Base() isa.VAddr { return h.base }

// Size returns the heap's total size.
func (h *Heap) Size() uint64 { return h.size }

// Alloc claims n bytes (8-byte aligned), first-fit.
func (h *Heap) Alloc(n int) (isa.VAddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("talloc: alloc of %d bytes", n)
	}
	need := (uint64(n) + 7) &^ 7
	for i := range h.free {
		if h.free[i].len >= need {
			addr := h.free[i].addr
			h.free[i].addr += isa.VAddr(need)
			h.free[i].len -= need
			if h.free[i].len == 0 {
				h.free = append(h.free[:i], h.free[i+1:]...)
			}
			h.live[addr] = need
			return addr, nil
		}
	}
	return 0, fmt.Errorf("talloc: out of heap (%d bytes requested)", n)
}

// Free releases an allocation. The memory contents are NOT cleared — the
// realistic behaviour that made Heartbleed leak stale secrets.
func (h *Heap) Free(addr isa.VAddr) error {
	n, ok := h.live[addr]
	if !ok {
		return fmt.Errorf("talloc: free of unallocated address %#x", uint64(addr))
	}
	delete(h.live, addr)
	h.free = append(h.free, extent{addr: addr, len: n})
	sort.Slice(h.free, func(i, j int) bool { return h.free[i].addr < h.free[j].addr })
	// Coalesce adjacent extents.
	out := h.free[:0]
	for _, e := range h.free {
		if len(out) > 0 && out[len(out)-1].addr+isa.VAddr(out[len(out)-1].len) == e.addr {
			out[len(out)-1].len += e.len
		} else {
			out = append(out, e)
		}
	}
	h.free = out
	return nil
}

// Extend donates a new address range to the heap (dynamic enclave memory:
// pages augmented after initialization). The heap may become discontiguous;
// Size() then reports total capacity rather than a span. The range must not
// overlap any existing free extent or live allocation.
func (h *Heap) Extend(addr isa.VAddr, size uint64) error {
	if size == 0 {
		return fmt.Errorf("talloc: empty extension")
	}
	overlaps := func(a isa.VAddr, n uint64) bool {
		return uint64(addr) < uint64(a)+n && uint64(a) < uint64(addr)+size
	}
	for _, e := range h.free {
		if overlaps(e.addr, e.len) {
			return fmt.Errorf("talloc: extension [%#x,+%#x) overlaps free extent", uint64(addr), size)
		}
	}
	for a, n := range h.live {
		if overlaps(a, n) {
			return fmt.Errorf("talloc: extension [%#x,+%#x) overlaps live allocation", uint64(addr), size)
		}
	}
	h.size += size
	h.free = append(h.free, extent{addr: addr, len: size})
	sort.Slice(h.free, func(i, j int) bool { return h.free[i].addr < h.free[j].addr })
	out := h.free[:0]
	for _, e := range h.free {
		if len(out) > 0 && out[len(out)-1].addr+isa.VAddr(out[len(out)-1].len) == e.addr {
			out[len(out)-1].len += e.len
		} else {
			out = append(out, e)
		}
	}
	h.free = out
	return nil
}

// SizeOf returns the size of a live allocation.
func (h *Heap) SizeOf(addr isa.VAddr) (uint64, bool) {
	n, ok := h.live[addr]
	return n, ok
}

// LiveBytes reports total allocated bytes (tests).
func (h *Heap) LiveBytes() uint64 {
	var total uint64
	for _, n := range h.live {
		total += n
	}
	return total
}

// FreeBytes reports total free bytes (tests).
func (h *Heap) FreeBytes() uint64 {
	var total uint64
	for _, e := range h.free {
		total += e.len
	}
	return total
}
