package talloc

import (
	"testing"
	"testing/quick"

	"nestedenclave/internal/isa"
)

func TestAllocFree(t *testing.T) {
	h := New(0x1000, 0x1000)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0x1000 || uint64(a) >= 0x2000 {
		t.Fatalf("allocation outside heap: %#x", uint64(a))
	}
	n, ok := h.SizeOf(a)
	if !ok || n != 104 { // rounded to 8
		t.Fatalf("SizeOf = %d, %v", n, ok)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	if _, ok := h.SizeOf(a); ok {
		t.Fatal("freed allocation still live")
	}
}

func TestAdjacency(t *testing.T) {
	// First-fit from a fresh heap allocates consecutively — the property
	// the Heartbleed over-read depends on.
	h := New(0, 0x1000)
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	if b != a+64 {
		t.Fatalf("allocations not adjacent: %#x then %#x", uint64(a), uint64(b))
	}
}

func TestFreeReuseFirstFit(t *testing.T) {
	h := New(0, 0x1000)
	a, _ := h.Alloc(64)
	if _, err := h.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	c, _ := h.Alloc(32)
	if c != a {
		t.Fatalf("freed extent not reused first-fit: got %#x, want %#x", uint64(c), uint64(a))
	}
}

func TestCoalescing(t *testing.T) {
	h := New(0, 256)
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	c, _ := h.Alloc(64)
	_ = c
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	// a and b coalesce into one 128-byte extent; a 128-byte alloc must fit.
	d, err := h.Alloc(128)
	if err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
	if d != a {
		t.Fatalf("coalesced extent at %#x, want %#x", uint64(d), uint64(a))
	}
}

func TestExhaustion(t *testing.T) {
	h := New(0, 64)
	if _, err := h.Alloc(65); err == nil {
		t.Fatal("oversized allocation accepted")
	}
	if _, err := h.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(1); err == nil {
		t.Fatal("allocation from empty heap accepted")
	}
}

func TestInvalidArgs(t *testing.T) {
	h := New(0, 64)
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := h.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if err := h.Free(0x999); err == nil {
		t.Fatal("free of wild pointer accepted")
	}
}

func TestAccounting(t *testing.T) {
	h := New(0x100, 0x100)
	if h.FreeBytes() != 0x100 || h.LiveBytes() != 0 {
		t.Fatal("fresh heap accounting wrong")
	}
	a, _ := h.Alloc(16)
	if h.LiveBytes() != 16 || h.FreeBytes() != 0x100-16 {
		t.Fatalf("accounting after alloc: live=%d free=%d", h.LiveBytes(), h.FreeBytes())
	}
	_ = h.Free(a)
	if h.LiveBytes() != 0 || h.FreeBytes() != 0x100 {
		t.Fatal("accounting after free wrong")
	}
}

// Property: under any alloc/free sequence, live allocations never overlap,
// all stay in bounds, and live+free bytes always equal the heap size.
func TestInvariantProperty(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint8
	}
	f := func(ops []op) bool {
		h := New(0x4000, 0x800)
		var live []isa.VAddr
		for _, o := range ops {
			if o.Alloc || len(live) == 0 {
				a, err := h.Alloc(int(o.Size%128) + 1)
				if err != nil {
					continue
				}
				live = append(live, a)
			} else {
				if err := h.Free(live[0]); err != nil {
					return false
				}
				live = live[1:]
			}
			if h.LiveBytes()+h.FreeBytes() != h.Size() {
				return false
			}
			// Overlap check.
			for i := range live {
				ni, _ := h.SizeOf(live[i])
				if uint64(live[i]) < uint64(h.Base()) ||
					uint64(live[i])+ni > uint64(h.Base())+h.Size() {
					return false
				}
				for j := i + 1; j < len(live); j++ {
					nj, _ := h.SizeOf(live[j])
					if uint64(live[i]) < uint64(live[j])+nj && uint64(live[j]) < uint64(live[i])+ni {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
