package adversary

import (
	"fmt"
	"strings"
	"sync"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// Engine executes one attack Program. It is installed into the simulator's
// kernel-controlled hook sites (the pager's blob handling, the scheduler's
// preemption point, the IPC router) and fires attack actions until its Ops
// budget is spent. Every fired action is recorded with the simulated cycle
// it landed on; the resulting transcript is a pure function of the Program,
// so `nesclave repro -adversary` replays a run byte-identically.
//
// All randomness comes from a splitmix64 stream seeded by Program.Seed and
// drawn in a fixed order at construction time — never from the clock, the
// scheduler, or map iteration (the package is in nescheck's replay-critical
// set).
type Engine struct {
	prog Program
	rec  *trace.Recorder

	mu      sync.Mutex
	fired   int
	actions []Action

	// Seed-derived program parameters, drawn once in New in a fixed order.
	aexDelay   int // in-enclave accesses to let pass before the first preemption
	ipcTrigger int // extra sends beyond the window before an IPC replay fires

	// Blob hoard: every sealed EWB blob the pager ever handed to untrusted
	// memory, in arrival order (arrival order is deterministic; the capture
	// map is only ever indexed, never ranged).
	captures []capture
	firstCap map[capKey]int

	// remap_under_tlb target (SetRemapTarget).
	remapPT    *pt.Table
	remapV     isa.VAddr
	remapPA    isa.PAddr
	remapPerms isa.Perm
	remapSet   bool
	preemptN   int

	// eld_redirect target (SetRedirect).
	redirPA  isa.PAddr
	redirSet bool

	// IPC man-in-the-middle state.
	held     [][]byte // frames withheld for a shallow reorder
	deepHeld bool     // a frame has been withheld permanently
}

type capKey struct {
	owner isa.EID
	vaddr isa.VAddr
}

type capture struct {
	key  capKey
	blob *sgx.EvictedPage
}

// New validates the program and derives its seed-dependent parameters.
// rec may be nil (actions then carry cycle -1).
func New(p Program, rec *trace.Recorder) (*Engine, error) {
	if _, err := ParseStrategy(string(p.Strategy)); err != nil {
		return nil, err
	}
	if p.Ops <= 0 {
		return nil, fmt.Errorf("adversary: program needs a positive op budget, got %d", p.Ops)
	}
	e := &Engine{prog: p, rec: rec, firstCap: make(map[capKey]int)}
	// Draw every seed-derived parameter here, in a fixed order, so the
	// program's behaviour depends only on (Seed, Strategy, Ops).
	s := splitmix{state: p.Seed}
	e.aexDelay = 1 + int(s.next()%3)
	e.ipcTrigger = int(s.next() % 3)
	return e, nil
}

// splitmix is the same splitmix64 stream package chaos uses — one uint64 of
// state, full-period, trivially reproducible.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Program returns the attack specification the engine runs.
func (e *Engine) Program() Program { return e.prog }

// Spend consumes one unit of the attack budget, recording the action. It
// returns false (and fires nothing) once the budget is exhausted. Exported
// because scenario-driven attacks (double_map's alias mapping, the pinned
// readers) burn budget from the campaign harness rather than a hook.
func (e *Engine) Spend(site, note string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spendLocked(site, note)
}

func (e *Engine) spendLocked(site, note string) bool {
	if e.fired >= e.prog.Ops {
		return false
	}
	cy := int64(-1)
	if e.rec != nil {
		cy = e.rec.Cycles()
	}
	e.fired++
	e.actions = append(e.actions, Action{Seq: e.fired, Cycles: cy, Site: site, Note: note})
	return true
}

// Fired reports how many attack actions have landed.
func (e *Engine) Fired() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// Actions returns a copy of the fired actions in order.
func (e *Engine) Actions() []Action {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Action(nil), e.actions...)
}

// FirstAttackCycle returns the simulated cycle of the first fired action, or
// -1 if nothing fired. Detection latency is measured from here.
func (e *Engine) FirstAttackCycle() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.actions) == 0 {
		return -1
	}
	return e.actions[0].Cycles
}

// Transcript renders the program header and every fired action — the
// byte-identical replay artifact.
func (e *Engine) Transcript() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", e.prog)
	for _, a := range e.actions {
		fmt.Fprintf(&sb, "%s\n", a)
	}
	return sb.String()
}

// captureBlob is the OnEvict tap: hoard a private copy of every sealed blob
// the pager stores, remembering the first (oldest) capture per page lane.
func (e *Engine) captureBlob(owner isa.EID, vpage isa.VAddr, blob *sgx.EvictedPage) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := *blob
	cp.Cipher = append([]byte(nil), blob.Cipher...)
	k := capKey{owner, vpage}
	e.captures = append(e.captures, capture{key: k, blob: &cp})
	if _, seen := e.firstCap[k]; !seen {
		e.firstCap[k] = len(e.captures) - 1
	}
}

// InstallPager wires the engine into the driver's paging hook sites. Only
// the hooks the strategy needs are installed; everything else stays nil
// (and therefore free).
func (e *Engine) InstallPager(d *kos.Driver) {
	switch e.prog.Strategy {
	case StratBlobReplay:
		d.OnEvict = e.captureBlob
		d.ReloadFilter = func(owner isa.EID, vpage isa.VAddr, genuine *sgx.EvictedPage) *sgx.EvictedPage {
			e.mu.Lock()
			defer e.mu.Unlock()
			idx, ok := e.firstCap[capKey{owner, vpage}]
			if !ok {
				return nil
			}
			stale := e.captures[idx].blob
			if stale.Version >= genuine.Version {
				return nil // the oldest capture is still the current blob
			}
			if !e.spendLocked("pager.reload",
				fmt.Sprintf("replay stale blob v%d over genuine v%d for eid %d page %#x",
					stale.Version, genuine.Version, owner, uint64(vpage))) {
				return nil
			}
			return stale
		}
	case StratBlobCrossWire:
		d.OnEvict = e.captureBlob
		d.ReloadFilter = func(owner isa.EID, vpage isa.VAddr, genuine *sgx.EvictedPage) *sgx.EvictedPage {
			e.mu.Lock()
			defer e.mu.Unlock()
			k := capKey{owner, vpage}
			// Newest capture of any OTHER page lane: a fresh, authentic blob
			// wired to the wrong fault.
			for i := len(e.captures) - 1; i >= 0; i-- {
				c := e.captures[i]
				if c.key == k {
					continue
				}
				if !e.spendLocked("pager.reload",
					fmt.Sprintf("cross-wire blob of eid %d page %#x into fault of eid %d page %#x",
						c.key.owner, uint64(c.key.vaddr), owner, uint64(vpage))) {
					return nil
				}
				return c.blob
			}
			return nil
		}
	case StratDropShootdown, StratReorderShootdown:
		d.SuppressIPI = func(victim isa.EID, core int) bool {
			return e.Spend("pager.shootdown",
				fmt.Sprintf("suppress ETRACK IPI for eid %d -> core %d", victim, core))
		}
	case StratEldRedirect:
		d.RemapReload = func(owner isa.EID, vpage isa.VAddr) (isa.PAddr, bool) {
			e.mu.Lock()
			defer e.mu.Unlock()
			if !e.redirSet {
				return 0, false
			}
			if !e.spendLocked("pager.remap",
				fmt.Sprintf("point reloaded PTE of eid %d page %#x at attacker pa %#x",
					owner, uint64(vpage), uint64(e.redirPA))) {
				return 0, false
			}
			return e.redirPA, true
		}
	}
}

// SetRedirect arms eld_redirect with the attacker-chosen physical frame.
func (e *Engine) SetRedirect(pa isa.PAddr) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.redirPA, e.redirSet = pa, true
}

// SetRemapTarget arms remap_under_tlb: the page table to rewrite, the victim
// virtual page, and the attacker frame to point it at.
func (e *Engine) SetRemapTarget(t *pt.Table, v isa.VAddr, pa isa.PAddr, perms isa.Perm) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.remapPT, e.remapV, e.remapPA, e.remapPerms, e.remapSet = t, v, pa, perms, true
}

// InstallScheduler wires the engine into the machine's preemption hook for
// the scheduler-level strategies. victimCore < 0 targets whichever core the
// victim lands on (the SDK rotates ECalls across cores, so a fixed target
// would usually miss).
func (e *Engine) InstallScheduler(m *sgx.Machine, victimCore int) {
	match := func(c *sgx.Core) bool { return victimCore < 0 || c.ID == victimCore }
	switch e.prog.Strategy {
	case StratAEXPreempt:
		m.Preempt = func(c *sgx.Core) {
			if !match(c) {
				return
			}
			e.mu.Lock()
			e.preemptN++
			fire := e.preemptN >= e.aexDelay &&
				e.spendLocked("sched.preempt",
					fmt.Sprintf("targeted AEX+ERESUME on core %d at in-enclave access #%d", c.ID, e.preemptN))
			e.mu.Unlock()
			if !fire {
				return
			}
			t := c.CurrentTCS()
			if t == nil {
				return
			}
			if m.AEX(c) != nil {
				return
			}
			_ = m.EResume(c, t)
		}
	case StratEresumeWrongCore:
		m.Preempt = func(c *sgx.Core) {
			if !match(c) {
				return
			}
			var alt *sgx.Core
			for _, cc := range m.Cores() {
				if cc.ID != c.ID && !cc.InEnclave() {
					alt = cc
					break
				}
			}
			if alt == nil {
				return
			}
			if !e.Spend("sched.resume",
				fmt.Sprintf("AEX core %d, ERESUME its TCS on core %d", c.ID, alt.ID)) {
				return
			}
			t := c.CurrentTCS()
			if t == nil {
				return
			}
			if m.AEX(c) != nil {
				return
			}
			_ = m.EResume(alt, t)
		}
	case StratRemapUnderTLB:
		m.Preempt = func(c *sgx.Core) {
			if !match(c) {
				return
			}
			e.mu.Lock()
			if !e.remapSet {
				e.mu.Unlock()
				return
			}
			e.preemptN++
			n := e.preemptN
			switch n {
			case 2:
				// Access #1 walked the honest PTE and warmed the TLB (the core
				// entered with a cold TLB); now the rewrite hides behind the
				// cached translation until the TLB drops it.
				if e.spendLocked("sched.remap",
					fmt.Sprintf("rewrite PTE %#x -> pa %#x under live TLB of core %d",
						uint64(e.remapV), uint64(e.remapPA), c.ID)) {
					e.remapPT.Map(e.remapV, e.remapPA, e.remapPerms)
				}
				e.mu.Unlock()
			case 4:
				// Force a flush so the poisoned PTE gets re-walked.
				fire := e.spendLocked("sched.preempt",
					fmt.Sprintf("targeted AEX+ERESUME on core %d to flush its TLB", c.ID))
				e.mu.Unlock()
				if !fire {
					return
				}
				t := c.CurrentTCS()
				if t == nil {
					return
				}
				if m.AEX(c) != nil {
					return
				}
				_ = m.EResume(c, t)
			default:
				e.mu.Unlock()
			}
		}
	}
}

// InstallIPC wires the engine into the kernel IPC router as a full
// man-in-the-middle on the named channel. winSize must match the reliable
// channel's retransmit window so the deep strategies aim past it.
func (e *Engine) InstallIPC(svc *kos.IPCService, channelName string, winSize int) {
	adv := &kos.IPCAdversary{}
	switch e.prog.Strategy {
	case StratIPCReplay:
		trigger := winSize + 3 + e.ipcTrigger
		adv.Scramble = func(log, queue [][]byte, incoming []byte) [][]byte {
			out := append(queue, incoming)
			if len(log) >= trigger &&
				e.Spend("ipc.replay", fmt.Sprintf("re-deliver frame 0 after %d sends", len(log))) {
				out = append(out, log[0])
			}
			return out
		}
	case StratIPCReorder:
		adv.Scramble = func(log, queue [][]byte, incoming []byte) [][]byte {
			e.mu.Lock()
			defer e.mu.Unlock()
			if len(e.held) == 0 {
				if e.spendLocked("ipc.reorder",
					fmt.Sprintf("withhold frame %d for one send", len(log)-1)) {
					e.held = append(e.held, incoming)
					return queue
				}
				return append(queue, incoming)
			}
			out := append(queue, incoming)
			out = append(out, e.held...)
			e.held = nil
			return out
		}
	case StratIPCReorderDeep:
		adv.Scramble = func(log, queue [][]byte, incoming []byte) [][]byte {
			e.mu.Lock()
			defer e.mu.Unlock()
			if !e.deepHeld && len(log) >= 2 &&
				e.spendLocked("ipc.drop",
					fmt.Sprintf("withhold frame %d past the retransmit window", len(log)-1)) {
				e.deepHeld = true
				return queue
			}
			return append(queue, incoming)
		}
	default:
		return
	}
	svc.SetAdversary(channelName, adv)
}
