package adversary

import (
	"strings"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(string(s))
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("melt_the_epc"); err == nil {
		t.Errorf("unknown strategy accepted")
	}
	if len(Strategies()) != 12 {
		t.Errorf("catalog has %d strategies, want 12", len(Strategies()))
	}
}

func TestNewRejectsBadPrograms(t *testing.T) {
	if _, err := New(Program{Strategy: "bogus", Ops: 1}, nil); err == nil {
		t.Errorf("unknown strategy accepted")
	}
	if _, err := New(Program{Strategy: StratBlobReplay, Ops: 0}, nil); err == nil {
		t.Errorf("zero op budget accepted")
	}
	if _, err := New(Program{Strategy: StratBlobReplay, Ops: -3}, nil); err == nil {
		t.Errorf("negative op budget accepted")
	}
}

func TestSpendExhaustsBudget(t *testing.T) {
	e, err := New(Program{Seed: 7, Strategy: StratAEXPreempt, Ops: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Spend("a", "first") || !e.Spend("b", "second") {
		t.Fatalf("budgeted spends refused")
	}
	if e.Spend("c", "third") {
		t.Errorf("spend beyond the op budget succeeded")
	}
	if e.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", e.Fired())
	}
	if got := len(e.Actions()); got != 2 {
		t.Errorf("len(Actions()) = %d, want 2", got)
	}
}

// TestTranscriptDeterminism: the transcript is a pure function of the
// Program and the spend sequence — two engines fed the same spends render
// byte-identical transcripts.
func TestTranscriptDeterminism(t *testing.T) {
	run := func() string {
		e, err := New(Program{Seed: 0xfeed, Strategy: StratIPCReplay, Ops: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Spend("ipc.replay", "re-deliver frame 0")
		e.Spend("ipc.replay", "re-deliver frame 1")
		return e.Transcript()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("transcripts diverge:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "program -adversary -strategy ipc_replay -seed 0xfeed -ops 3\n") {
		t.Errorf("transcript header wrong:\n%s", a)
	}
}

func TestFirstAttackCycle(t *testing.T) {
	e, err := New(Program{Seed: 1, Strategy: StratDoubleMap, Ops: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.FirstAttackCycle(); got != -1 {
		t.Errorf("FirstAttackCycle before any spend = %d, want -1", got)
	}
	e.Spend("host.mmap", "alias")
	// Without a recorder, actions carry cycle -1 but are still recorded.
	if got := e.FirstAttackCycle(); got != -1 {
		t.Errorf("FirstAttackCycle with nil recorder = %d, want -1", got)
	}
	if e.Fired() != 1 {
		t.Errorf("Fired() = %d, want 1", e.Fired())
	}
}
