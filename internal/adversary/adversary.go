// Package adversary turns the simulator's untrusted kernel into an active
// attacker. Where package chaos injects *random* faults at the kernel/MEE/
// IPC boundaries, this package executes *named attack strategies* — the
// kernel lying about page mappings, replaying sealed paging blobs, dropping
// shootdown IPIs, mis-scheduling AEX/ERESUME, and replaying or reordering
// IPC — each as a deterministic (seed, strategy, ops) program.
//
// The threat model is the paper's §VII discussion sharpened to its worst
// case: the OS is not merely buggy but adversarial, and every interface it
// implements (page tables, the pager, the scheduler, IPC routing) is a
// weapon. The defended-or-detected contract the campaign harness
// (internal/bench) verifies for every strategy:
//
//   - defended: Figure-6 access validation and the four §VII-A invariants
//     hold throughout, and the workload completes with correct data; or
//   - detected: a typed detection error — ErrBlobReplay from the sealed-blob
//     version counters, ErrReplayDetected from the reliable channel's
//     sequence accounting, ErrContextLost from the trusted runtime's
//     scheduling guard, a Figure-6 fault, or an invariant-audit finding —
//     surfaces before any wrong data is returned.
//
// A strategy that ends any other way (wrong data, silent corruption) is a
// breach, and the campaign test fails.
package adversary

import (
	"fmt"
	"strings"
)

// Strategy names one attack program. The catalog is the contract between
// the engine, the campaign harness, and the CLI scoreboard.
type Strategy string

const (
	// StratDoubleMap maps an attacker-controlled virtual page at a victim
	// enclave's resident EPC frame and reads it from outside the enclave.
	StratDoubleMap Strategy = "double_map"
	// StratRemapUnderTLB rewrites the victim's PTE to an attacker frame
	// while the victim core still holds the old translation in its TLB,
	// then forces a flush so the poisoned PTE gets re-walked.
	StratRemapUnderTLB Strategy = "remap_under_tlb"
	// StratEldRedirect reloads an evicted page honestly but points the
	// repaired PTE at an attacker-chosen physical frame.
	StratEldRedirect Strategy = "eld_redirect"
	// StratBlobReplay presents a stale (earlier-version) sealed EWB blob on
	// the page-fault reload path.
	StratBlobReplay Strategy = "blob_replay"
	// StratBlobCrossWire answers one enclave's page fault with another
	// enclave's (fresh, authentic) sealed blob.
	StratBlobCrossWire Strategy = "blob_crosswire"
	// StratDropShootdown suppresses the ETRACK shootdown IPIs during
	// eviction, leaving a cross-core reader with a stale translation, then
	// escalates to EREMOVE when the hardware refuses the eviction.
	StratDropShootdown Strategy = "drop_shootdown"
	// StratReorderShootdown delivers the shootdown IPIs only after the
	// first EWB attempt instead of before it.
	StratReorderShootdown Strategy = "reorder_shootdown"
	// StratAEXPreempt delivers targeted AEX preemptions inside the victim's
	// critical window (mid-call, between accesses).
	StratAEXPreempt Strategy = "aex_preempt"
	// StratEresumeWrongCore AEXes the victim and ERESUMEs its TCS on a
	// different core, leaving the original thread on a dead context.
	StratEresumeWrongCore Strategy = "eresume_wrong_core"
	// StratIPCReplay re-delivers a long-since-delivered frame on the
	// reliable channel.
	StratIPCReplay Strategy = "ipc_replay"
	// StratIPCReorder swaps adjacent frames in flight — disorder within the
	// retransmit bound, which the channel must absorb.
	StratIPCReorder Strategy = "ipc_reorder"
	// StratIPCReorderDeep withholds a frame until it has fallen out of the
	// sender's retransmit window.
	StratIPCReorderDeep Strategy = "ipc_reorder_deep"
)

// Strategies returns the full catalog in campaign order.
func Strategies() []Strategy {
	return []Strategy{
		StratDoubleMap, StratRemapUnderTLB, StratEldRedirect,
		StratBlobReplay, StratBlobCrossWire,
		StratDropShootdown, StratReorderShootdown,
		StratAEXPreempt, StratEresumeWrongCore,
		StratIPCReplay, StratIPCReorder, StratIPCReorderDeep,
	}
}

// ParseStrategy resolves a name to a catalog entry.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if string(s) == name {
			return s, nil
		}
	}
	return "", fmt.Errorf("adversary: unknown strategy %q (catalog: %s)", name, strings.Join(StrategyNames(), ", "))
}

// StrategyNames returns the catalog as plain strings (CLI help).
func StrategyNames() []string {
	all := Strategies()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = string(s)
	}
	return out
}

// Program is the deterministic attack specification: everything a run needs
// to replay byte-identically.
type Program struct {
	Seed     uint64
	Strategy Strategy
	// Ops bounds how many attack actions the engine may fire (its budget).
	Ops int
}

// String renders the replay line.
func (p Program) String() string {
	return fmt.Sprintf("-adversary -strategy %s -seed %#x -ops %d", p.Strategy, p.Seed, p.Ops)
}

// Action is one fired attack, stamped with the simulated cycle it landed on.
// The sequence of actions is the run's transcript; two runs of the same
// Program must produce identical transcripts.
type Action struct {
	Seq    int
	Cycles int64
	Site   string
	Note   string
}

func (a Action) String() string {
	return fmt.Sprintf("#%d @%d %s: %s", a.Seq, a.Cycles, a.Site, a.Note)
}
