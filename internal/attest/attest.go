// Package attest implements remote attestation over the nested-report
// primitive (paper §IV-E "Remote attestation"): a quoting service — the
// stand-in for Intel's Quoting Enclave — converts a locally-verifiable
// NEREPORT into a platform-signed Quote a remote challenger can check, and
// the challenger-side verification confirms not just individual enclave
// measurements but the inner-outer association shape.
package attest

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/core"
	"nestedenclave/internal/measure"
)

// QuotingService models the platform's quoting enclave: it holds the
// attestation signing key (provisioned at "manufacturing") and a
// well-known measurement that enclaves target their reports at.
type QuotingService struct {
	ext  *core.Extension
	meas measure.Digest
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewQuotingService provisions a quoting service on the machine.
func NewQuotingService(ext *core.Extension) (*QuotingService, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	qs := &QuotingService{ext: ext, pub: pub, priv: priv}
	qs.meas = sha256.Sum256([]byte("quoting-enclave"))
	return qs, nil
}

// Measurement is the digest enclaves must target with NEREPORT so the
// quoting service can verify the report.
func (qs *QuotingService) Measurement() measure.Digest { return qs.meas }

// PlatformKey returns the public attestation key a challenger pins.
func (qs *QuotingService) PlatformKey() ed25519.PublicKey { return qs.pub }

// Quote is a remotely-verifiable attestation statement.
type Quote struct {
	Report core.NestedReport
	Sig    []byte
}

func quoteBody(r *core.NestedReport) []byte {
	h := sha256.New()
	h.Write([]byte("QUOTE"))
	h.Write(r.MRENCLAVE[:])
	h.Write(r.MRSIGNER[:])
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], r.Attributes)
	h.Write(a[:])
	h.Write(r.ReportData[:])
	binary.LittleEndian.PutUint64(a[:], uint64(len(r.OuterMeasurements)))
	h.Write(a[:])
	for _, d := range r.OuterMeasurements {
		h.Write(d[:])
	}
	binary.LittleEndian.PutUint64(a[:], uint64(len(r.InnerMeasurements)))
	h.Write(a[:])
	for _, d := range r.InnerMeasurements {
		h.Write(d[:])
	}
	return h.Sum(nil)
}

// MakeQuote verifies the nested report's MAC (the quoting service derives
// the report key for its own measurement, like the real QE does with
// EGETKEY) and signs a quote over it.
func (qs *QuotingService) MakeQuote(r *core.NestedReport) (*Quote, error) {
	if r.TargetMRENCLAVE != qs.meas {
		return nil, fmt.Errorf("attest: report not targeted at the quoting service")
	}
	// Re-derive the MAC the hardware would have produced for us.
	want := qs.ext.Machine().MACWithReportKey(qs.meas, macInput(r))
	if want != r.MAC {
		return nil, fmt.Errorf("attest: report MAC invalid — not produced by NEREPORT on this platform")
	}
	return &Quote{Report: *r, Sig: ed25519.Sign(qs.priv, quoteBody(r))}, nil
}

// macInput mirrors the NEREPORT MAC body (kept in sync with package core via
// the round-trip tests).
func macInput(r *core.NestedReport) []byte {
	h := sha256.New()
	h.Write([]byte("NEREPORT"))
	h.Write(r.MRENCLAVE[:])
	h.Write(r.MRSIGNER[:])
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], r.Attributes)
	h.Write(a[:])
	h.Write(r.ReportData[:])
	binary.LittleEndian.PutUint64(a[:], uint64(len(r.OuterMeasurements)))
	h.Write(a[:])
	for _, d := range r.OuterMeasurements {
		h.Write(d[:])
	}
	binary.LittleEndian.PutUint64(a[:], uint64(len(r.InnerMeasurements)))
	h.Write(a[:])
	for _, d := range r.InnerMeasurements {
		h.Write(d[:])
	}
	h.Write(r.TargetMRENCLAVE[:])
	return h.Sum(nil)
}

// Expectation is what a remote challenger requires of a quote.
type Expectation struct {
	// Enclave, when non-zero, pins the reporting enclave's MRENCLAVE.
	Enclave measure.Digest
	// Signer, when non-zero, pins MRSIGNER instead (same-author policy).
	Signer measure.Digest
	// Outers, when non-nil, must equal the reported outer measurements.
	Outers []measure.Digest
	// RequireInners, when non-nil, must each appear among the reported
	// inner measurements.
	RequireInners []measure.Digest
	// Nonce must match the first bytes of ReportData (freshness).
	Nonce []byte
}

// Verify checks a quote against the pinned platform key and the expectation.
func Verify(platformKey ed25519.PublicKey, q *Quote, want Expectation) error {
	if !ed25519.Verify(platformKey, quoteBody(&q.Report), q.Sig) {
		return fmt.Errorf("attest: quote signature invalid")
	}
	r := &q.Report
	if !want.Enclave.IsZero() && r.MRENCLAVE != want.Enclave {
		return fmt.Errorf("attest: MRENCLAVE %v, want %v", r.MRENCLAVE, want.Enclave)
	}
	if !want.Signer.IsZero() && r.MRSIGNER != want.Signer {
		return fmt.Errorf("attest: MRSIGNER %v, want %v", r.MRSIGNER, want.Signer)
	}
	if want.Outers != nil {
		if len(r.OuterMeasurements) != len(want.Outers) {
			return fmt.Errorf("attest: %d outer enclaves reported, want %d",
				len(r.OuterMeasurements), len(want.Outers))
		}
		for i, d := range want.Outers {
			if r.OuterMeasurements[i] != d {
				return fmt.Errorf("attest: outer %d measures %v, want %v", i, r.OuterMeasurements[i], d)
			}
		}
	}
	for _, d := range want.RequireInners {
		found := false
		for _, got := range r.InnerMeasurements {
			if got == d {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("attest: required inner enclave %v not associated", d)
		}
	}
	if len(want.Nonce) > 0 {
		if len(want.Nonce) > len(r.ReportData) {
			return fmt.Errorf("attest: nonce longer than report data")
		}
		for i, b := range want.Nonce {
			if r.ReportData[i] != b {
				return fmt.Errorf("attest: nonce mismatch (stale quote?)")
			}
		}
	}
	return nil
}
