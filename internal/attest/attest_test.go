package attest_test

import (
	"strings"
	"testing"

	"nestedenclave/internal/attest"
	"nestedenclave/internal/core"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
)

type rig struct {
	ext   *core.Extension
	host  *sdk.Host
	qs    *attest.QuotingService
	inner *sdk.Enclave
	outer *sdk.Enclave
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := sgx.MustNew(sgx.SmallConfig())
	ext := core.Enable(m, core.TwoLevel())
	k := kos.New(m)
	host := sdk.NewHost(k, ext)
	qs, err := attest.NewQuotingService(ext)
	if err != nil {
		t.Fatal(err)
	}

	innerImg := sdk.NewImage("app", 0x1000_0000, sdk.DefaultLayout())
	outerImg := sdk.NewImage("lib", 0x2000_0000, sdk.DefaultLayout())
	innerImg.RegisterECall("noop", func(env *sdk.Env, args []byte) ([]byte, error) { return nil, nil })
	si := innerImg.Sign(measure.MustNewAuthor(), []measure.Digest{outerImg.Measure()}, nil)
	so := outerImg.Sign(measure.MustNewAuthor(), nil, []measure.Digest{innerImg.Measure()})
	outer, err := host.Load(so)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := host.Load(si)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}
	return &rig{ext: ext, host: host, qs: qs, inner: inner, outer: outer}
}

// quoteFromInner runs the full remote-attestation flow from inside the
// inner enclave with the given challenger nonce.
func quoteFromInner(t *testing.T, r *rig, nonce []byte) *attest.Quote {
	t.Helper()
	var quote *attest.Quote
	r.inner.Image().RegisterECall("attest", func(env *sdk.Env, args []byte) ([]byte, error) {
		var data [64]byte
		copy(data[:], args)
		rep, err := r.ext.NEREPORT(env.C, r.qs.Measurement(), data)
		if err != nil {
			return nil, err
		}
		quote, err = r.qs.MakeQuote(rep)
		return nil, err
	})
	if _, err := r.inner.ECall("attest", nonce); err != nil {
		t.Fatalf("attest ecall: %v", err)
	}
	return quote
}

func TestRemoteAttestationRoundTrip(t *testing.T) {
	r := newRig(t)
	nonce := []byte("challenger-nonce")
	q := quoteFromInner(t, r, nonce)
	err := attest.Verify(r.qs.PlatformKey(), q, attest.Expectation{
		Enclave: r.inner.SECS().MRENCLAVE,
		Outers:  []measure.Digest{r.outer.SECS().MRENCLAVE},
		Nonce:   nonce,
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Signer policy too.
	err = attest.Verify(r.qs.PlatformKey(), q, attest.Expectation{
		Signer: r.inner.SECS().MRSIGNER,
	})
	if err != nil {
		t.Fatalf("signer policy: %v", err)
	}
}

func TestVerifyRejectsWrongExpectations(t *testing.T) {
	r := newRig(t)
	nonce := []byte("n1")
	q := quoteFromInner(t, r, nonce)

	var wrong measure.Digest
	wrong[0] = 0xAB
	cases := []struct {
		name string
		want attest.Expectation
		frag string
	}{
		{"enclave", attest.Expectation{Enclave: wrong}, "MRENCLAVE"},
		{"signer", attest.Expectation{Signer: wrong}, "MRSIGNER"},
		{"outers", attest.Expectation{Outers: []measure.Digest{wrong}}, "outer"},
		{"outer count", attest.Expectation{Outers: []measure.Digest{}}, "outer"},
		{"nonce", attest.Expectation{Nonce: []byte("other")}, "nonce"},
		{"inner", attest.Expectation{RequireInners: []measure.Digest{wrong}}, "inner"},
	}
	for _, c := range cases {
		err := attest.Verify(r.qs.PlatformKey(), q, c.want)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestQuoteTamperDetected(t *testing.T) {
	r := newRig(t)
	q := quoteFromInner(t, r, []byte("n"))
	q.Report.OuterMeasurements[0][0] ^= 1
	if err := attest.Verify(r.qs.PlatformKey(), q, attest.Expectation{}); err == nil {
		t.Fatal("tampered quote verified")
	}
}

func TestQuotingServiceRejectsForgedReport(t *testing.T) {
	r := newRig(t)
	// A report fabricated by the (untrusted) host, without NEREPORT.
	forged := &core.NestedReport{
		MRENCLAVE:       r.inner.SECS().MRENCLAVE,
		TargetMRENCLAVE: r.qs.Measurement(),
	}
	if _, err := r.qs.MakeQuote(forged); err == nil {
		t.Fatal("forged report quoted")
	}
	// A report targeted elsewhere.
	q := quoteFromInner(t, r, []byte("n"))
	rep := q.Report
	rep.TargetMRENCLAVE = measure.Digest{}
	if _, err := r.qs.MakeQuote(&rep); err == nil {
		t.Fatal("mis-targeted report quoted")
	}
}

func TestOuterQuoteListsInners(t *testing.T) {
	r := newRig(t)
	var quote *attest.Quote
	r.outer.Image().RegisterECall("attest", func(env *sdk.Env, args []byte) ([]byte, error) {
		rep, err := r.ext.NEREPORT(env.C, r.qs.Measurement(), [64]byte{})
		if err != nil {
			return nil, err
		}
		quote, err = r.qs.MakeQuote(rep)
		return nil, err
	})
	if _, err := r.outer.ECall("attest", nil); err != nil {
		t.Fatal(err)
	}
	err := attest.Verify(r.qs.PlatformKey(), quote, attest.Expectation{
		Enclave:       r.outer.SECS().MRENCLAVE,
		RequireInners: []measure.Digest{r.inner.SECS().MRENCLAVE},
	})
	if err != nil {
		t.Fatalf("outer quote verification: %v", err)
	}
}
