package tlb

import (
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

func TestLookupInsertFlush(t *testing.T) {
	rec := &trace.Recorder{}
	tb := New(rec)
	if _, ok := tb.Lookup(0x1234); ok {
		t.Fatal("empty TLB hit")
	}
	tb.Insert(Entry{VPN: 1, PPN: 99, Perms: isa.PermRW})
	e, ok := tb.Lookup(0x1abc) // same VPN 1
	if !ok || e.PPN != 99 {
		t.Fatalf("lookup after insert: %+v ok=%v", e, ok)
	}
	if rec.Get(trace.EvTLBHit) != 1 || rec.Get(trace.EvTLBMiss) != 1 {
		t.Fatalf("hit/miss counters: %d/%d", rec.Get(trace.EvTLBHit), rec.Get(trace.EvTLBMiss))
	}
	tb.FlushAll()
	if tb.Len() != 0 {
		t.Fatal("flush left entries")
	}
	if rec.Get(trace.EvTLBFlush) != 1 {
		t.Fatal("flush not counted")
	}
}

func TestFlushVPN(t *testing.T) {
	tb := New(nil)
	tb.Insert(Entry{VPN: 1, PPN: 10})
	tb.Insert(Entry{VPN: 2, PPN: 20})
	tb.FlushVPN(1)
	if _, ok := tb.Lookup(isa.VAddr(1 << isa.PageShift)); ok {
		t.Fatal("flushed entry survived")
	}
	if _, ok := tb.Lookup(isa.VAddr(2 << isa.PageShift)); !ok {
		t.Fatal("unrelated entry lost")
	}
}

func TestInsertOverwritesSameVPN(t *testing.T) {
	tb := New(nil)
	tb.Insert(Entry{VPN: 5, PPN: 1})
	tb.Insert(Entry{VPN: 5, PPN: 2})
	e, _ := tb.Lookup(isa.VAddr(5 << isa.PageShift))
	if e.PPN != 2 {
		t.Fatalf("stale entry after overwrite: PPN=%d", e.PPN)
	}
	if tb.Len() != 1 {
		t.Fatalf("duplicate VPN entries: %d", tb.Len())
	}
}

func TestEntriesSnapshot(t *testing.T) {
	tb := New(nil)
	tb.Insert(Entry{VPN: 1, PPN: 10, FilledInEnclave: true, FilledEID: 7})
	tb.Insert(Entry{VPN: 2, PPN: 20})
	es := tb.Entries()
	if len(es) != 2 {
		t.Fatalf("snapshot length %d", len(es))
	}
	found := false
	for _, e := range es {
		if e.VPN == 1 && e.FilledEID == 7 && e.FilledInEnclave {
			found = true
		}
	}
	if !found {
		t.Fatal("audit tags lost in snapshot")
	}
}
