// Package tlb models a per-core Translation Lookaside Buffer.
//
// The TLB is the linchpin of SGX's access control: validation of a
// translation happens once, while handling the TLB miss, and the inserted
// entry is trusted until flushed. The architecture therefore maintains the
// invariant that "TLB must always contain only valid translations" (paper
// §II-B) by flushing on every transition between protection domains and on
// every virtual-to-physical mapping change of an EPC page.
//
// Entries carry the protection context under which they were validated (the
// enclave mode and EID at fill time) purely for *auditing*: the security
// property tests walk live TLB contents and check the paper's four
// invariants. Real hardware does not tag entries this way — it relies on the
// flushes — and neither does the simulator's lookup path: a lookup only
// matches entries filled under the current context because transitions flush.
package tlb

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// Entry is a cached translation.
type Entry struct {
	VPN   uint64
	PPN   uint64
	Perms isa.Perm
	// FilledInEnclave and FilledEID record the protection context under
	// which the entry was validated (auditing only; see package comment).
	FilledInEnclave bool
	FilledEID       isa.EID
}

// TLB is a per-core translation cache. Not safe for concurrent use; each
// core owns exactly one, and safety under the machine's shared-lock access
// path is by ownership, not locking: lookups and fills happen only on the
// owning core's goroutine (which holds at least the machine's read lock),
// while cross-core flushes (TLB shootdowns during EPC paging) are issued
// only under the machine's exclusive lock, when no access path can be
// running anywhere.
type TLB struct {
	entries map[uint64]Entry
	rec     *trace.Recorder

	// CoreID names the owning core in attributed charges.
	CoreID int
	// BillEID is the enclave whose execution currently fills and flushes
	// this TLB; the transition instructions maintain it alongside the
	// protection context, so hits, misses and flushes bill correctly.
	BillEID uint64
}

// New creates an empty TLB. rec may be nil.
func New(rec *trace.Recorder) *TLB {
	return &TLB{entries: make(map[uint64]Entry), rec: rec}
}

// Lookup returns the cached translation for the virtual page, if present.
func (t *TLB) Lookup(v isa.VAddr) (Entry, bool) {
	e, ok := t.entries[v.VPN()]
	if t.rec != nil {
		if ok {
			t.rec.ChargeTo(t.BillEID, t.CoreID, trace.EvTLBHit, trace.CostTLBHit)
		} else {
			t.rec.ChargeTo(t.BillEID, t.CoreID, trace.EvTLBMiss, 0)
		}
	}
	return e, ok
}

// Insert caches a validated translation. Only the access validator may call
// this; inserting an unvalidated entry breaks the security invariants (and
// the property tests will catch it).
func (t *TLB) Insert(e Entry) { t.entries[e.VPN] = e }

// FlushAll drops every entry — the action taken on EENTER/EEXIT/AEX and on
// NEENTER/NEEXIT transitions.
func (t *TLB) FlushAll() {
	if t.rec != nil {
		t.rec.ChargeTo(t.BillEID, t.CoreID, trace.EvTLBFlush, trace.CostTLBFlush)
	}
	clear(t.entries)
}

// FlushVPN drops the entry for one virtual page (targeted invalidation used
// by page-permission changes in unprotected memory).
func (t *TLB) FlushVPN(vpn uint64) { delete(t.entries, vpn) }

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }

// Entries returns a snapshot of all cached translations, for invariant
// audits in tests.
func (t *TLB) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}
