package phys

import (
	"bytes"
	"testing"

	"nestedenclave/internal/isa"
)

func small() Layout {
	return Layout{DRAMSize: 8 << 20, PRMBase: 2 << 20, PRMSize: 4 << 20}
}

func TestLayoutValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	bad := []Layout{
		{DRAMSize: 0, PRMBase: 0, PRMSize: isa.PageSize},
		{DRAMSize: 1 << 20, PRMBase: 100, PRMSize: isa.PageSize},
		{DRAMSize: 1 << 20, PRMBase: 0, PRMSize: 100},
		{DRAMSize: 1 << 20, PRMBase: 0, PRMSize: 2 << 20},
		{DRAMSize: 1<<20 + 1, PRMBase: 0, PRMSize: isa.PageSize},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestReadWrite(t *testing.T) {
	m := MustNew(small())
	data := []byte("hello physical world")
	m.Write(0x1000, data)
	if got := m.Read(0x1000, len(data)); !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
	dst := make([]byte, len(data))
	m.ReadInto(0x1000, dst)
	if !bytes.Equal(dst, data) {
		t.Errorf("ReadInto %q", dst)
	}
	m.Zero(0x1000, 5)
	if got := m.Read(0x1000, 5); !bytes.Equal(got, make([]byte, 5)) {
		t.Errorf("Zero left %v", got)
	}
}

func TestInPRM(t *testing.T) {
	m := MustNew(small())
	l := small()
	if m.InPRM(l.PRMBase - 1) {
		t.Error("byte before PRM reported inside")
	}
	if !m.InPRM(l.PRMBase) {
		t.Error("PRM base reported outside")
	}
	last := isa.PAddr(uint64(l.PRMBase) + l.PRMSize - 1)
	if !m.InPRM(last) {
		t.Error("last PRM byte reported outside")
	}
	if m.InPRM(last + 1) {
		t.Error("byte after PRM reported inside")
	}
	if !m.PageInPRM(l.PRMBase + 123) {
		t.Error("PageInPRM for interior offset")
	}
}

func TestContains(t *testing.T) {
	m := MustNew(small())
	if !m.Contains(0, int(m.Size())) {
		t.Error("full range not contained")
	}
	if m.Contains(isa.PAddr(m.Size()-1), 2) {
		t.Error("overflow range contained")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := MustNew(small())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	m.Read(isa.PAddr(m.Size()), 1)
}

func TestTamperByte(t *testing.T) {
	m := MustNew(small())
	m.Write(0x2000, []byte{0xAA})
	m.TamperByte(0x2000, 0xFF)
	if got := m.Read(0x2000, 1)[0]; got != 0x55 {
		t.Errorf("tampered byte = %#x, want 0x55", got)
	}
}

func TestLine(t *testing.T) {
	m := MustNew(small())
	m.Write(0x3000, bytes.Repeat([]byte{0xAB}, isa.LineSize))
	line := m.Line(0x3020) // interior address, same line
	if len(line) != isa.LineSize {
		t.Fatalf("line length %d", len(line))
	}
	for _, b := range line {
		if b != 0xAB {
			t.Fatalf("line content %v", line[:8])
		}
	}
}
