// Package phys models the physical memory of the simulated machine: a flat
// DRAM with a Processor Reserved Memory (PRM) range carved out for the
// Enclave Page Cache. The package knows nothing about enclaves; it only
// answers "is this physical address inside PRM?" and moves bytes.
//
// DRAM contents are what a physical attacker probing the memory bus would
// observe. The MEE (package mee) encrypts PRM-resident lines, so reading PRM
// ranges directly from a Memory returns ciphertext; the processor-side access
// path (package cache + mee) is the only way to observe plaintext.
package phys

import (
	"fmt"

	"nestedenclave/internal/isa"
)

// Layout describes the physical address map of a machine.
type Layout struct {
	// DRAMSize is the total physical memory in bytes. Must be page-aligned.
	DRAMSize uint64
	// PRMBase is the start of the Processor Reserved Memory. Page-aligned.
	PRMBase isa.PAddr
	// PRMSize is the PRM length in bytes. Page-aligned.
	PRMSize uint64
}

// DefaultLayout mirrors a small SGX machine: 256 MiB of DRAM with a
// 128 MiB PRM (the simulator is not bound by real SGX's 93.5 MiB usable EPC,
// but stays in the same order of magnitude).
func DefaultLayout() Layout {
	return Layout{
		DRAMSize: 256 << 20,
		PRMBase:  64 << 20,
		PRMSize:  128 << 20,
	}
}

// Validate checks alignment and containment of the layout.
func (l Layout) Validate() error {
	switch {
	case l.DRAMSize == 0 || l.DRAMSize&isa.PageMask != 0:
		return fmt.Errorf("phys: DRAM size %#x not page-aligned", l.DRAMSize)
	case uint64(l.PRMBase)&isa.PageMask != 0:
		return fmt.Errorf("phys: PRM base %#x not page-aligned", uint64(l.PRMBase))
	case l.PRMSize == 0 || l.PRMSize&isa.PageMask != 0:
		return fmt.Errorf("phys: PRM size %#x not page-aligned", l.PRMSize)
	case uint64(l.PRMBase)+l.PRMSize > l.DRAMSize:
		return fmt.Errorf("phys: PRM [%#x,%#x) exceeds DRAM size %#x",
			uint64(l.PRMBase), uint64(l.PRMBase)+l.PRMSize, l.DRAMSize)
	}
	return nil
}

// Memory is the simulated DRAM device.
type Memory struct {
	layout Layout
	data   []byte
}

// New allocates a DRAM with the given layout.
func New(layout Layout) (*Memory, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return &Memory{layout: layout, data: make([]byte, layout.DRAMSize)}, nil
}

// MustNew is New for known-good layouts; it panics on error.
func MustNew(layout Layout) *Memory {
	m, err := New(layout)
	if err != nil {
		panic(err)
	}
	return m
}

// Layout returns the physical address map.
func (m *Memory) Layout() Layout { return m.layout }

// Size returns the DRAM size in bytes.
func (m *Memory) Size() uint64 { return m.layout.DRAMSize }

// InPRM reports whether the physical address lies in the reserved range.
func (m *Memory) InPRM(p isa.PAddr) bool {
	return p >= m.layout.PRMBase && uint64(p) < uint64(m.layout.PRMBase)+m.layout.PRMSize
}

// PageInPRM reports whether the whole page containing p is reserved.
// PRM is page-aligned, so a page is either fully inside or fully outside.
func (m *Memory) PageInPRM(p isa.PAddr) bool { return m.InPRM(p.PageBase()) }

// Contains reports whether [p, p+n) lies inside DRAM.
func (m *Memory) Contains(p isa.PAddr, n int) bool {
	return uint64(p) < m.layout.DRAMSize && uint64(p)+uint64(n) <= m.layout.DRAMSize
}

func (m *Memory) check(p isa.PAddr, n int) {
	if !m.Contains(p, n) {
		panic(fmt.Sprintf("phys: access [%#x,%#x) outside DRAM of %#x bytes",
			uint64(p), uint64(p)+uint64(n), m.layout.DRAMSize))
	}
}

// Read copies n bytes at physical address p into a fresh slice. This is the
// "memory bus" view: PRM contents are returned exactly as stored (ciphertext
// once an MEE is attached to the write path).
func (m *Memory) Read(p isa.PAddr, n int) []byte {
	m.check(p, n)
	out := make([]byte, n)
	copy(out, m.data[p:uint64(p)+uint64(n)])
	return out
}

// ReadInto copies len(dst) bytes at physical address p into dst.
func (m *Memory) ReadInto(p isa.PAddr, dst []byte) {
	m.check(p, len(dst))
	copy(dst, m.data[p:uint64(p)+uint64(len(dst))])
}

// Write stores b at physical address p.
func (m *Memory) Write(p isa.PAddr, b []byte) {
	m.check(p, len(b))
	copy(m.data[p:uint64(p)+uint64(len(b))], b)
}

// Zero clears n bytes at physical address p.
func (m *Memory) Zero(p isa.PAddr, n int) {
	m.check(p, n)
	clear(m.data[p : uint64(p)+uint64(n)])
}

// Line returns a copy of the 64-byte cacheline containing p.
func (m *Memory) Line(p isa.PAddr) []byte {
	return m.Read(p.LineBase(), isa.LineSize)
}

// TamperByte flips bits of the byte at p directly in DRAM, modelling a
// physical attacker with bus access. It bypasses every processor-side
// protection; the MEE integrity tree is expected to detect the change on the
// next protected read.
func (m *Memory) TamperByte(p isa.PAddr, xor byte) {
	m.check(p, 1)
	m.data[p] ^= xor
}
