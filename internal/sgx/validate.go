package sgx

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/tlb"
	"nestedenclave/internal/trace"
)

// This file implements the baseline SGX access-validation flow (the paper's
// Figure 2): the checks run while handling a TLB miss, before a translation
// may be inserted into the TLB. Package core replaces it with the Figure-6
// flow that adds the inner→outer branches.

// BaselineValidator is the unmodified SGX check.
type BaselineValidator struct{}

// abortOutcome is the shared "silently abort the access" result: reads
// return all ones, writes are dropped — SGX's abort-page semantics for
// unauthorized accesses to protected memory.
func abortOutcome() (tlb.Entry, *Outcome) { return tlb.Entry{}, &Outcome{Abort: true} }

func faultOutcome(f *isa.Fault) (tlb.Entry, *Outcome) { return tlb.Entry{}, &Outcome{Fault: f} }

// ChargeValidateSteps charges n validation steps as a single batched record:
// global and per-enclave counters advance by n and the clock by
// n*CostValidateStep, bit-identical to n individual charges but without the
// per-step recording overhead on the walk's hot path.
func ChargeValidateSteps(c *Core, n int64) {
	c.m.Rec.ChargeBatchTo(c.BillEID(), c.ID, trace.EvValidateStep, n, trace.CostValidateStep)
}

// Validate implements Validator. Validation steps are counted locally and
// charged as one batch on every exit path.
func (BaselineValidator) Validate(c *Core, v isa.VAddr, pte pt.PTE, op isa.Access) (tlb.Entry, *Outcome) {
	m := c.m
	paddr := isa.PAddr(pte.PPN << isa.PageShift)
	var steps int64
	defer func() { ChargeValidateSteps(c, steps) }()

	// The page-table permission applies in every mode; an OS-underpermitted
	// page is an ordinary page fault.
	if !pte.Perms.Allows(op) {
		return faultOutcome(isa.PF(v, op, "page-table permission"))
	}

	// (A) Non-enclave execution must never touch the protected region.
	steps++
	if !c.inEnclave {
		if m.DRAM.PageInPRM(paddr) {
			return abortOutcome()
		}
		return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: pte.Perms}, nil
	}

	s := c.cur

	// (B) Enclave mode, physical page inside PRM: the EPCM entry decides.
	steps++
	if m.DRAM.PageInPRM(paddr) {
		return validateEPCM(c, s, v, pte, op, &steps)
	}

	// (C) Enclave mode, physical page outside PRM.
	steps++
	if s.ContainsVPN(v.VPN()) {
		// A virtual page inside ELRANGE must be backed by an EPC page; this
		// translation points elsewhere, so the page was evicted (or the OS
		// lies). Page fault — the kernel may reload and retry.
		return faultOutcome(isa.PF(v, op, "ELRANGE page not backed by EPC (evicted?)"))
	}
	// An enclave access to ordinary unsecure memory: permitted for data,
	// but never executable (enclaves must not run untrusted code).
	perms := pte.Perms &^ isa.PermX
	if !perms.Allows(op) {
		return faultOutcome(isa.PF(v, op, "execute from unsecure memory in enclave mode"))
	}
	return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: perms,
		FilledInEnclave: true, FilledEID: s.EID}, nil
}

// validateEPCM performs the owner-enclave EPCM checks shared by the baseline
// and nested flows: the entry must be a valid, unblocked, regular page owned
// by enclave s and recorded at exactly this virtual address, and both the
// EPCM and page-table permissions must admit the access.
func validateEPCM(c *Core, s *SECS, v isa.VAddr, pte pt.PTE, op isa.Access, steps *int64) (tlb.Entry, *Outcome) {
	m := c.m
	paddr := isa.PAddr(pte.PPN << isa.PageShift)
	ent, ok := m.EPC.EntryAt(paddr)
	*steps++
	if !ok || !ent.Valid {
		return abortOutcome()
	}
	if ent.Blocked {
		// Blocked pages are in eviction; no new translations may be
		// created. Deliver a page fault so the kernel can finish paging.
		return faultOutcome(isa.PF(v, op, "EPC page blocked for eviction"))
	}
	if ent.Type != isa.PTReg {
		// SECS/TCS/VA pages are never software-accessible.
		return abortOutcome()
	}
	*steps++
	if ent.Owner != s.EID {
		return abortOutcome()
	}
	*steps++
	if ent.Vaddr != v.PageBase() {
		// The invariant: an EPC page is accessible only through the single
		// virtual address fixed by the enclave author. The OS aliasing it
		// elsewhere is an attack; abort.
		return abortOutcome()
	}
	eff := ent.Perms & pte.Perms
	if !eff.Allows(op) {
		return faultOutcome(isa.PF(v, op, "EPCM permission"))
	}
	return tlb.Entry{VPN: v.VPN(), PPN: pte.PPN, Perms: eff,
		FilledInEnclave: true, FilledEID: s.EID}, nil
}

// ChargeValidateStep charges a single validation step; package core's nested
// flow uses the batched ChargeValidateSteps instead on its hot path.
func ChargeValidateStep(c *Core) { ChargeValidateSteps(c, 1) }

// BaselineTracker implements SGX's ETRACK thread tracking: the cores that
// may hold stale translations for enclave eid are those with live execution
// context (current or suspended) in that enclave.
type BaselineTracker struct{}

// CoresToShootdown implements Tracker.
func (BaselineTracker) CoresToShootdown(m *Machine, eid isa.EID) []*Core {
	var out []*Core
	for _, c := range m.cores {
		for _, e := range c.ExecutingEIDs() {
			if e == eid {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// BroadcastTracker is the paper's "simplified, but potentially more costly
// solution": shoot down every core in the system. Used by the ablation
// bench contrasting precise tracking with broadcast.
type BroadcastTracker struct{}

// CoresToShootdown implements Tracker.
func (BroadcastTracker) CoresToShootdown(m *Machine, eid isa.EID) []*Core {
	out := make([]*Core, len(m.cores))
	copy(out, m.cores)
	return out
}
