package sgx

import (
	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// This file implements the core's data-access path: TLB lookup, TLB-miss
// handling (page walk + access validation), and the physical access through
// the cache/MEE hierarchy.

const maxFaultRetries = 4

// slowCoreStallCycles is the simulated-cycle cost of one injected core stall.
const slowCoreStallCycles = 20000

// maybeChaos runs the core-level fault-injection hooks before a memory
// access: artificial core stalls and spurious interrupt storms (real AEX +
// ERESUME round trips, exercising the save/scrub/restore machinery). Must be
// called WITHOUT the machine lock — AEX and ERESUME take it. Returns a
// non-nil error only when an interrupted enclave could not be resumed (it
// was poisoned mid-storm); the core is then out of enclave mode and the
// caller must propagate the fault.
func (c *Core) maybeChaos() error {
	// The adversarial scheduler hook runs first: a malicious kernel uses it to
	// deliver *targeted* preemptions (AEX in a chosen critical window, ERESUME
	// on a core of its choosing) rather than the random storms below. Nil-cost
	// when unset — a single pointer load.
	if h := c.m.Preempt; h != nil && c.inEnclave {
		h(c)
	}
	inj := c.m.Chaos
	if inj == nil {
		return nil
	}
	if inj.FireOn(chaos.SiteSlowCore, c.ID) {
		c.m.Rec.Advance(slowCoreStallCycles * int64(inj.Burst(chaos.SiteSlowCore)))
	}
	if c.inEnclave && inj.FireOn(chaos.SiteAEXStorm, c.ID) {
		for i := inj.Burst(chaos.SiteAEXStorm); i > 0 && c.inEnclave; i-- {
			t := c.curTCS
			if err := c.m.AEX(c); err != nil {
				return err
			}
			if err := c.m.EResume(c, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// translateLocked resolves v for the given access kind. It returns either a
// physical address, abort=true (abort-page semantics), or a fault.
// Caller holds at least the read side of m.mu: the whole miss-handling
// sequence only reads machine-global structures (COW page table, EPCM, SECS
// association lists) and touches per-core state (TLB) owned by the calling
// goroutine, so concurrent translations on different cores proceed in
// parallel while mutating instructions hold the write lock.
func (c *Core) translateLocked(v isa.VAddr, op isa.Access) (pa isa.PAddr, abort bool, err error) {
	rec := c.m.Rec
	eid := c.BillEID()
	// The memory hierarchy below (LLC, MEE) has no protection context of its
	// own; bill its line operations to the enclave driving this access, and
	// parent them under the innermost span of the driving core.
	rec.SetBillHint(eid)
	rec.SetSpanHint(rec.CurrentSpan(c.ID))
	if e, ok := c.TLB.Lookup(v); ok && e.Perms.Allows(op) {
		return isa.PAddr(e.PPN<<isa.PageShift | v.Offset()), false, nil
	}
	// TLB miss: walk the (untrusted) page table, then validate. The whole
	// miss-handling sequence is observed as one page-walk latency sample,
	// classified as nested when the Figure-6 outer-enclave branch fired.
	walkStart := rec.Cycles()
	nested0 := rec.Get(trace.EvNestedValidate)
	sp := rec.BeginSpan(c.ID, eid, "page_walk")
	defer sp.End()
	rec.SetSpanHint(sp.ID())
	rec.ChargeToDetail(eid, c.ID, trace.EvPageWalk, trace.CostPageWalk, v.VPN())
	if c.PT == nil {
		return 0, false, isa.PF(v, op, "no address space installed")
	}
	pte, ok := c.PT.Walk(v)
	if !ok {
		return 0, false, isa.PF(v, op, "unmapped")
	}
	if !pte.Present {
		return 0, false, isa.PF(v, op, "not present")
	}
	entry, outcome := c.m.Validator.Validate(c, v, pte, op)
	if outcome != nil {
		if outcome.Abort {
			return 0, true, nil
		}
		switch outcome.Fault.Class {
		case isa.FaultGP:
			rec.ChargeToDetail(eid, c.ID, trace.EvFaultGP, 0, v.VPN())
		case isa.FaultPF:
			rec.ChargeToDetail(eid, c.ID, trace.EvFaultPF, 0, v.VPN())
		}
		return 0, false, outcome.Fault
	}
	c.TLB.Insert(entry)
	walkOp := trace.OpPageWalk
	if rec.Get(trace.EvNestedValidate) != nested0 {
		walkOp = trace.OpNestedWalk
	}
	rec.Observe(walkOp, rec.Cycles()-walkStart)
	return isa.PAddr(entry.PPN<<isa.PageShift | v.Offset()), false, nil
}

// chunkEnd returns the end of the page-bounded chunk starting at v covering
// at most n bytes.
func chunkLen(v isa.VAddr, n int) int {
	inPage := isa.PageSize - int(v.Offset())
	if n < inPage {
		return n
	}
	return inPage
}

// handleFault gives the kernel's page-fault handler a chance to repair the
// mapping (e.g. reload an evicted EPC page) and retry. A fault taken in
// enclave mode costs an AEX + ERESUME round trip, which is charged here.
func (c *Core) handleFault(err error) bool {
	f, ok := err.(*isa.Fault)
	if !ok || f.Class != isa.FaultPF || c.PFHandler == nil {
		return false
	}
	if c.inEnclave {
		c.m.Rec.ChargeTo(c.BillEID(), c.ID, trace.EvAEX, trace.CostAEX)
	}
	// The kernel pager runs below any core context (its EWB/ELD spans open
	// on NoCore); parent them under the faulting call's span.
	c.m.Rec.SetSpanHint(c.m.Rec.CurrentSpan(c.ID))
	return c.PFHandler(c, f)
}

// ReadInto reads len(dst) bytes at virtual address v into dst through the
// full translation + protection path. Aborted regions read as 0xFF.
func (c *Core) ReadInto(v isa.VAddr, dst []byte) error {
	for off := 0; off < len(dst); {
		cur := v + isa.VAddr(off)
		n := chunkLen(cur, len(dst)-off)
		if err := c.maybeChaos(); err != nil {
			return err
		}
		for attempt := 0; ; attempt++ {
			c.m.mu.RLock()
			pa, abort, err := c.translateLocked(cur, isa.Read)
			if err == nil {
				if abort {
					c.m.mu.RUnlock()
					for i := 0; i < n; i++ {
						dst[off+i] = 0xFF
					}
					break
				}
				err = c.m.LLC.ReadIntoFor(pa, dst[off:off+n], c.BillEID(), c.m.Rec.CurrentSpan(c.ID))
				c.m.mu.RUnlock()
				if err != nil {
					return err // MEE integrity machine check
				}
				break
			}
			c.m.mu.RUnlock()
			if attempt < maxFaultRetries && c.handleFault(err) {
				continue
			}
			return err
		}
		off += n
	}
	return nil
}

// Read returns n bytes at virtual address v.
func (c *Core) Read(v isa.VAddr, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := c.ReadInto(v, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Write stores b at virtual address v through the full protection path.
// Writes to aborted regions are silently dropped.
func (c *Core) Write(v isa.VAddr, b []byte) error {
	for off := 0; off < len(b); {
		cur := v + isa.VAddr(off)
		n := chunkLen(cur, len(b)-off)
		if err := c.maybeChaos(); err != nil {
			return err
		}
		for attempt := 0; ; attempt++ {
			c.m.mu.RLock()
			pa, abort, err := c.translateLocked(cur, isa.Write)
			if err == nil {
				if !abort {
					err = c.m.LLC.WriteFor(pa, b[off:off+n], c.BillEID(), c.m.Rec.CurrentSpan(c.ID))
				}
				c.m.mu.RUnlock()
				if err != nil {
					return err
				}
				break
			}
			c.m.mu.RUnlock()
			if attempt < maxFaultRetries && c.handleFault(err) {
				continue
			}
			return err
		}
		off += n
	}
	return nil
}

// Fetch models an instruction fetch at v: a 16-byte read requiring execute
// permission. Enclave entry points and the NX-on-unsecure-memory rule are
// exercised through it.
func (c *Core) Fetch(v isa.VAddr) error {
	if err := c.maybeChaos(); err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		c.m.mu.RLock()
		_, abort, err := c.translateLocked(v, isa.Execute)
		c.m.mu.RUnlock()
		if err == nil {
			if abort {
				return isa.PF(v, isa.Execute, "fetch from abort page")
			}
			return nil
		}
		if attempt < maxFaultRetries && c.handleFault(err) {
			continue
		}
		return err
	}
}

// ReadU64 reads a little-endian uint64 at v.
func (c *Core) ReadU64(v isa.VAddr) (uint64, error) {
	var b [8]byte
	if err := c.ReadInto(v, b[:]); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// WriteU64 stores a little-endian uint64 at v.
func (c *Core) WriteU64(v isa.VAddr, x uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(x >> (8 * i))
	}
	return c.Write(v, b[:])
}
