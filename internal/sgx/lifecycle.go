package sgx

import (
	"fmt"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
)

// This file implements the privileged enclave-building instructions:
// ECREATE, EADD, EEXTEND, EINIT, EREMOVE. The kernel driver (package kos)
// invokes them on behalf of the untrusted loader; every byte they load is
// folded into MRENCLAVE so EINIT and NASSO can detect tampering.

// ECreate allocates a new enclave: an SECS page in the EPC plus the
// machine-private SECS state. ELRANGE is [base, base+size) and immutable.
func (m *Machine) ECreate(base isa.VAddr, size uint64, attributes uint64) (*SECS, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if uint64(base)&isa.PageMask != 0 || size == 0 || size&isa.PageMask != 0 {
		return nil, isa.GP("ECREATE: ELRANGE [%#x,+%#x) not page-aligned", uint64(base), size)
	}
	eid := m.nextEID
	m.nextEID++
	// Enclave-build work (the SECS page, its eventual MEE metadata) bills to
	// the enclave being created.
	m.Rec.SetBillHint(uint64(eid))
	page, err := m.EPC.Alloc(eid, isa.PTSECS, 0, 0)
	if err != nil {
		return nil, isa.GP("ECREATE: %v", err)
	}
	s := &SECS{
		EID:          eid,
		Base:         base,
		Size:         size,
		Attributes:   attributes,
		builder:      measure.NewBuilder(),
		secsPage:     page,
		epochEntries: make(map[int]uint64),
	}
	s.builder.ECreate(size, attributes)
	m.secsByEID[eid] = s
	return s, nil
}

// AddPageArgs describes one EADD.
type AddPageArgs struct {
	// Vaddr is the page's virtual address; must lie in ELRANGE.
	Vaddr isa.VAddr
	// Type is PTReg or PTTCS.
	Type isa.PageType
	// Perms are the author-specified access permissions (PTReg only).
	Perms isa.Perm
	// Content is the initial page content (nil means zeroes). Max PageSize.
	Content []byte
	// Entry is the entry-point index for PTTCS pages.
	Entry int
	// Measure controls whether EEXTEND runs over the content (the loader's
	// choice in real SGX; unmeasured pages weaken attestation).
	Measure bool
}

// EAdd adds one page to an uninitialized enclave, returning the EPC page
// index so the kernel can map it.
func (m *Machine) EAdd(s *SECS, a AddPageArgs) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.Initialized {
		return 0, isa.GP("EADD: enclave %d already initialized", s.EID)
	}
	if uint64(a.Vaddr)&isa.PageMask != 0 {
		return 0, isa.GP("EADD: vaddr %#x not page-aligned", uint64(a.Vaddr))
	}
	if !s.InELRANGE(a.Vaddr, isa.PageSize) {
		return 0, isa.GP("EADD: vaddr %#x outside ELRANGE", uint64(a.Vaddr))
	}
	if len(a.Content) > isa.PageSize {
		return 0, isa.GP("EADD: content of %d bytes exceeds a page", len(a.Content))
	}
	var perms isa.Perm
	switch a.Type {
	case isa.PTReg:
		perms = a.Perms
	case isa.PTTCS:
		perms = 0 // TCS pages are never software-accessible
	default:
		return 0, isa.GP("EADD: page type %v not addable", a.Type)
	}
	// Page-add work (EPC slot, content writeback through the MEE) bills to
	// the enclave under construction.
	m.Rec.SetBillHint(uint64(s.EID))
	page, err := m.EPC.Alloc(s.EID, a.Type, a.Vaddr, perms)
	if err != nil {
		return 0, isa.GP("EADD: %v", err)
	}
	// Microcode writes the initial content into the EPC page through the
	// cache hierarchy (so it lands encrypted in DRAM on writeback).
	content := make([]byte, isa.PageSize)
	copy(content, a.Content)
	pa := m.EPC.AddrOf(page)
	if err := m.LLC.Write(pa, content); err != nil {
		_ = m.EPC.Free(page)
		return 0, err
	}
	offset := uint64(a.Vaddr - s.Base)
	s.builder.EAdd(offset, a.Type, perms)
	if a.Measure {
		for ch := 0; ch < isa.PageSize; ch += isa.ExtendChunk {
			s.builder.EExtend(offset+uint64(ch), content[ch:ch+isa.ExtendChunk])
		}
	}
	if a.Type == isa.PTTCS {
		s.tcss = append(s.tcss, &TCS{Enclave: s.EID, Vaddr: a.Vaddr, Entry: a.Entry, page: page})
	}
	return page, nil
}

// EAug adds a zeroed regular page to an already-initialized enclave — the
// SGX2 dynamic-memory extension the paper's footnote 1 references ("SGX2
// allows dynamic EPC allocation to an existing enclave"). The page is not
// measured (it is guaranteed zero); the EACCEPT handshake by which real
// SGX2 enclaves acknowledge augmented pages is folded into the SDK's
// GrowHeap, which is the only caller that hands augmented addresses to
// enclave code.
func (m *Machine) EAug(s *SECS, vaddr isa.VAddr, perms isa.Perm) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !s.Initialized {
		return 0, isa.GP("EAUG: enclave %d not initialized (use EADD)", s.EID)
	}
	if uint64(vaddr)&isa.PageMask != 0 {
		return 0, isa.GP("EAUG: vaddr %#x not page-aligned", uint64(vaddr))
	}
	if !s.InELRANGE(vaddr, isa.PageSize) {
		return 0, isa.GP("EAUG: vaddr %#x outside ELRANGE", uint64(vaddr))
	}
	// The virtual page must not already be backed.
	for _, i := range m.EPC.PagesOf(s.EID) {
		if e := m.EPC.Entry(i); e.Type != isa.PTSECS && e.Vaddr == vaddr {
			return 0, isa.GP("EAUG: vaddr %#x already backed", uint64(vaddr))
		}
	}
	// Dynamic growth bills to the enclave the page is augmented into.
	m.Rec.SetBillHint(uint64(s.EID))
	page, err := m.EPC.Alloc(s.EID, isa.PTReg, vaddr, perms)
	if err != nil {
		return 0, isa.GP("EAUG: %v", err)
	}
	if err := m.LLC.Write(m.EPC.AddrOf(page), make([]byte, isa.PageSize)); err != nil {
		_ = m.EPC.Free(page)
		return 0, err
	}
	return page, nil
}

// EInit finalizes the enclave: verifies the author certificate, compares the
// expected measurement with the accumulated one, and freezes MRENCLAVE and
// MRSIGNER. Only initialized enclaves accept EENTER.
func (m *Machine) EInit(s *SECS, cert *measure.SigStruct) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.Initialized {
		return isa.GP("EINIT: enclave %d already initialized", s.EID)
	}
	if cert == nil {
		return isa.GP("EINIT: no SIGSTRUCT")
	}
	if err := cert.Verify(); err != nil {
		return isa.GP("EINIT: %v", err)
	}
	got := s.builder.Finalize()
	if got != cert.EnclaveHash {
		return isa.GP("EINIT: measurement mismatch: built %v, certificate expects %v",
			got, cert.EnclaveHash)
	}
	s.MRENCLAVE = got
	s.MRSIGNER = measure.SignerOf(cert.Signer)
	s.Cert = cert
	s.Initialized = true
	return nil
}

// ERemove frees one EPC page. SECS pages are only removable when no other
// page of the enclave remains; removing the SECS destroys the enclave.
func (m *Machine) ERemove(page int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.EPC.Entry(page)
	if !ent.Valid {
		return isa.GP("EREMOVE: page %d not valid", page)
	}
	// Teardown work (cache scrub, MEE metadata drop, EPC free) bills to the
	// enclave that owned the page.
	m.Rec.SetBillHint(uint64(ent.Owner))
	if ent.Type == isa.PTSECS {
		owner := ent.Owner
		for _, i := range m.EPC.PagesOf(owner) {
			if i != page {
				return isa.GP("EREMOVE: enclave %d still owns page %d", owner, i)
			}
		}
		s := m.secsByEID[owner]
		if s != nil {
			// Tear down associations so stale EIDs cannot be revived.
			for _, oe := range s.Nested.OuterEIDs {
				if outer := m.secsByEID[oe]; outer != nil {
					outer.Nested.InnerEIDs = removeEID(outer.Nested.InnerEIDs, owner)
				}
			}
			for _, ie := range s.Nested.InnerEIDs {
				if inner := m.secsByEID[ie]; inner != nil {
					inner.Nested.OuterEIDs = removeEID(inner.Nested.OuterEIDs, owner)
				}
			}
		}
		delete(m.secsByEID, owner)
		// The association graph changed (even for a lone enclave, its EID is
		// now dead): invalidate every cached outer-closure.
		m.BumpAssocEpoch()
		// Removing the SECS clears the poison mark: the identity can be
		// rebuilt from the image by a fresh ECREATE.
		m.pmu.Lock()
		delete(m.poisoned, owner)
		m.pmu.Unlock()
	}
	// Scrub the page: drop cached lines without writeback, forget the MEE
	// metadata, zero the DRAM ciphertext. Order matters — a writeback after
	// DropPage would recreate integrity metadata for a dead page.
	m.LLC.InvalidateRange(m.EPC.AddrOf(page), isa.PageSize)
	m.MEE.DropPage(m.EPC.AddrOf(page))
	m.DRAM.Zero(m.EPC.AddrOf(page), isa.PageSize)
	return m.EPC.Free(page)
}

func removeEID(s []isa.EID, e isa.EID) []isa.EID {
	out := s[:0]
	for _, x := range s {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// DestroyEnclave removes every page of the enclave, SECS last.
func (m *Machine) DestroyEnclave(s *SECS) error {
	m.mu.Lock()
	pages := m.EPC.PagesOf(s.EID)
	m.mu.Unlock()
	var secsPage = -1
	for _, p := range pages {
		m.mu.Lock()
		typ := m.EPC.Entry(p).Type
		m.mu.Unlock()
		if typ == isa.PTSECS {
			secsPage = p
			continue
		}
		if err := m.ERemove(p); err != nil {
			return err
		}
	}
	if secsPage >= 0 {
		return m.ERemove(secsPage)
	}
	return nil
}

// EPCFootprint returns the number of valid EPC pages owned by the enclave
// (code+data+TCS+SECS), the quantity Figure 10 tracks as memory footprint.
func (m *Machine) EPCFootprint(eid isa.EID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.EPC.PagesOf(eid))
}

// FindTCS resolves a TCS by its virtual address within the enclave.
func (s *SECS) FindTCS(v isa.VAddr) (*TCS, error) {
	for _, t := range s.tcss {
		if t.Vaddr == v {
			return t, nil
		}
	}
	return nil, fmt.Errorf("sgx: no TCS at %#x in enclave %d", uint64(v), s.EID)
}
