package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
)

// This file implements local attestation: EREPORT and EGETKEY. A REPORT is a
// claim about the calling enclave's identity, MACed with a key derivable
// only by the target enclave on the same platform — so the target can check
// it without any trusted software in between.

// Report is the EREPORT output structure.
type Report struct {
	// Identity of the reporting enclave.
	MRENCLAVE  measure.Digest
	MRSIGNER   measure.Digest
	Attributes uint64
	// ReportData is 64 bytes of caller-chosen data bound into the MAC
	// (typically a channel-binding nonce or key-exchange value).
	ReportData [64]byte
	// TargetMRENCLAVE names the enclave able to verify this report.
	TargetMRENCLAVE measure.Digest
	// MAC authenticates all of the above under the target's report key.
	MAC [32]byte
}

func (r *Report) macInput() []byte {
	h := sha256.New()
	h.Write([]byte("REPORT"))
	h.Write(r.MRENCLAVE[:])
	h.Write(r.MRSIGNER[:])
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], r.Attributes)
	h.Write(a[:])
	h.Write(r.ReportData[:])
	h.Write(r.TargetMRENCLAVE[:])
	return h.Sum(nil)
}

// reportKey derives the key a target enclave uses to verify reports
// addressed to it. Only EREPORT (microcode) and EGETKEY invoked *by that
// enclave* can produce it.
func (m *Machine) reportKey(target measure.Digest) [16]byte {
	return measure.DeriveKey(m.platformSecret, measure.KeyReport, target, measure.Digest{}, nil)
}

// EReport creates a report about the enclave currently executing on core c,
// targeted at the enclave with measurement target. Must run in enclave mode.
func (m *Machine) EReport(c *Core, target measure.Digest, reportData [64]byte) (*Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.inEnclave {
		return nil, isa.GP("EREPORT: not in enclave mode")
	}
	s := c.cur
	r := &Report{
		MRENCLAVE:       s.MRENCLAVE,
		MRSIGNER:        s.MRSIGNER,
		Attributes:      s.Attributes,
		ReportData:      reportData,
		TargetMRENCLAVE: target,
	}
	key := m.reportKey(target)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.macInput())
	copy(r.MAC[:], mac.Sum(nil))
	return r, nil
}

// VerifyReport checks a report addressed to the enclave running on core c.
// Must run in enclave mode of the target enclave (only it can derive the
// report key).
func (m *Machine) VerifyReport(c *Core, r *Report) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.inEnclave {
		return isa.GP("report verify: not in enclave mode")
	}
	if r.TargetMRENCLAVE != c.cur.MRENCLAVE {
		return isa.GP("report verify: report targets %v, not this enclave (%v)",
			r.TargetMRENCLAVE, c.cur.MRENCLAVE)
	}
	key := m.reportKey(c.cur.MRENCLAVE)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(r.macInput())
	if !hmac.Equal(mac.Sum(nil)[:32], r.MAC[:]) {
		return isa.GP("report verify: MAC mismatch")
	}
	return nil
}

// MACWithReportKey authenticates an arbitrary payload under the report key
// of the target enclave. It is microcode support for NEREPORT (package
// core), whose report covers the association relationship in addition to the
// fields EREPORT signs.
func (m *Machine) MACWithReportKey(target measure.Digest, payload []byte) [32]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := m.reportKey(target)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(payload)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// SealPolicy selects the identity a sealing key binds to.
type SealPolicy uint8

const (
	// SealToEnclave binds to MRENCLAVE: only the identical enclave unseals.
	SealToEnclave SealPolicy = iota
	// SealToSigner binds to MRSIGNER: any enclave from the same author.
	SealToSigner
)

// EGetKey derives a key for the enclave running on core c. Must run in
// enclave mode; the derivation mixes the platform secret with the enclave's
// identity, so no other enclave (or the OS) can derive the same key.
func (m *Machine) EGetKey(c *Core, name measure.KeyName, policy SealPolicy, extra []byte) ([16]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.inEnclave {
		return [16]byte{}, isa.GP("EGETKEY: not in enclave mode")
	}
	s := c.cur
	switch policy {
	case SealToEnclave:
		return measure.DeriveKey(m.platformSecret, name, s.MRENCLAVE, measure.Digest{}, extra), nil
	case SealToSigner:
		return measure.DeriveKey(m.platformSecret, name, measure.Digest{}, s.MRSIGNER, extra), nil
	}
	return [16]byte{}, isa.GP("EGETKEY: unknown policy %d", policy)
}
