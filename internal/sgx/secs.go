package sgx

import (
	"fmt"
	"sync/atomic"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
)

// SECS is the SGX Enclave Control Structure: the metadata defining an
// enclave. Architecturally it occupies a PT_SECS EPC page that software can
// never map; the simulator keeps the structure in machine-private state and
// charges the EPC page for it.
//
// The Nested field is the paper's Figure-3 extension: the outer/inner
// association lists stored in reserved SECS space. Baseline SGX ignores it;
// package core (the nested-enclave logic) populates it via NASSO.
type SECS struct {
	// EID uniquely identifies the enclave (stand-in for the physical
	// address of the SECS page, which is unique per enclave).
	EID isa.EID
	// Base and Size define ELRANGE, the contiguous virtual address range
	// fixed at creation.
	Base isa.VAddr
	Size uint64
	// Attributes is the attribute mask measured at ECREATE (debug, etc.).
	Attributes uint64

	// MRENCLAVE and MRSIGNER are fixed by EINIT.
	MRENCLAVE measure.Digest
	MRSIGNER  measure.Digest
	// Cert is the SIGSTRUCT the enclave was initialized with. NASSO reads
	// its expected-association lists.
	Cert *measure.SigStruct

	// Initialized flips when EINIT succeeds; only then may threads enter.
	Initialized bool

	// Nested holds the paper's new SECS fields.
	Nested NestedInfo

	// builder accumulates MRENCLAVE until EINIT.
	builder *measure.Builder
	// secsPage is the EPC page index backing this SECS.
	secsPage int
	// tcss are the enclave's thread control structures.
	tcss []*TCS
	// epochs implement ETRACK: see paging.go.
	trackEpoch   uint64
	epochEntries map[int]uint64 // coreID -> epoch at which it entered

	// outerChain caches this enclave's transitive outer closure, keyed to
	// the machine's association epoch (see Machine.AssocEpoch). The page-walk
	// hot path reads it lock-free; NASSO and EREMOVE invalidate it by bumping
	// the epoch.
	outerChain atomic.Pointer[outerClosure]
}

// outerClosure is one epoch's snapshot of an enclave's transitive outer
// enclaves. The chain slice is immutable once stored.
type outerClosure struct {
	epoch uint64
	chain []*SECS
}

// CachedOuterChain returns the outer closure cached at the given association
// epoch, or false if absent/stale. The chain must not be mutated.
func (s *SECS) CachedOuterChain(epoch uint64) ([]*SECS, bool) {
	if oc := s.outerChain.Load(); oc != nil && oc.epoch == epoch {
		return oc.chain, true
	}
	return nil, false
}

// StoreOuterChain caches the outer closure computed at the given association
// epoch. Racing stores for the same epoch carry identical content, so last
// writer winning is fine.
func (s *SECS) StoreOuterChain(epoch uint64, chain []*SECS) {
	s.outerChain.Store(&outerClosure{epoch: epoch, chain: chain})
}

// NestedInfo is the reserved-field extension of Figure 3.
type NestedInfo struct {
	// OuterEIDs lists the outer enclaves this enclave is bound to as an
	// inner. The paper's base design allows exactly one ("an inner enclave
	// can be associated only with a single outer enclave"); the §VIII
	// multiple-outer extension allows several. A nil/empty list means the
	// enclave is not an inner enclave (OuterEID = 0 in the paper).
	OuterEIDs []isa.EID
	// InnerEIDs lists the inner enclaves bound to this enclave as outer.
	InnerEIDs []isa.EID
}

// OuterEID returns the single outer association, or NoEnclave.
// It panics if the multiple-outer extension put more than one entry here;
// callers that support the extension must use OuterEIDs directly.
func (n *NestedInfo) OuterEID() isa.EID {
	switch len(n.OuterEIDs) {
	case 0:
		return isa.NoEnclave
	case 1:
		return n.OuterEIDs[0]
	}
	panic("sgx: OuterEID called on multi-outer enclave")
}

// IsInner reports whether the enclave is bound to at least one outer.
func (n *NestedInfo) IsInner() bool { return len(n.OuterEIDs) > 0 }

// IsOuter reports whether any inner enclave is bound to this enclave.
func (n *NestedInfo) IsOuter() bool { return len(n.InnerEIDs) > 0 }

// HasInner reports whether eid is one of this enclave's inner enclaves.
func (n *NestedInfo) HasInner(eid isa.EID) bool {
	for _, e := range n.InnerEIDs {
		if e == eid {
			return true
		}
	}
	return false
}

// HasOuter reports whether eid is one of this enclave's outer enclaves.
func (n *NestedInfo) HasOuter(eid isa.EID) bool {
	for _, e := range n.OuterEIDs {
		if e == eid {
			return true
		}
	}
	return false
}

// InELRANGE reports whether [v, v+n) lies inside the enclave's ELRANGE.
func (s *SECS) InELRANGE(v isa.VAddr, n int) bool {
	return v >= s.Base && uint64(v)+uint64(n) <= uint64(s.Base)+s.Size
}

// ContainsVPN reports whether the virtual page lies inside ELRANGE.
func (s *SECS) ContainsVPN(vpn uint64) bool {
	return s.InELRANGE(isa.VAddr(vpn<<isa.PageShift), isa.PageSize)
}

// TCSs returns the enclave's thread control structures.
func (s *SECS) TCSs() []*TCS { return s.tcss }

func (s *SECS) String() string {
	return fmt.Sprintf("enclave(eid=%d elrange=[%#x,%#x) init=%v)",
		s.EID, uint64(s.Base), uint64(s.Base)+s.Size, s.Initialized)
}

// TCS is a Thread Control Structure: the per-thread enclave entry context.
type TCS struct {
	// Enclave is the owning enclave.
	Enclave isa.EID
	// Vaddr is the TCS page's virtual address (its identity for EENTER).
	Vaddr isa.VAddr
	// Entry is the enclave-author-defined entry point. The simulator keeps
	// it symbolic: an index into the enclave image's entry table.
	Entry int
	// Busy is the hardware-maintained state bit: a TCS can host at most one
	// logical processor at a time; EENTER/NEENTER require it idle.
	Busy bool

	// ret is the reserved stack frame holding the suspended outer-enclave
	// context while this TCS's enclave runs as a nested inner (the paper:
	// NEENTER "saves the current context ... to a reserved stack frame of
	// the entering inner enclave"). nil for top-level entries.
	ret *enclaveFrame
	// ssa holds the state saved by an asynchronous enclave exit.
	ssa *savedFrame

	page int // EPC page index backing the TCS
}

// savedFrame is the simulator's SSA: the core state snapshot written by AEX
// and consumed by ERESUME. Suspended nested frames need no saving here —
// they already live in the TCS ret chain.
type savedFrame struct {
	regs   Registers
	cur    *SECS
	curTCS *TCS
}

// Registers models the architectural register file that transitions must
// save, restore and scrub. Synthetic enclave code stores live secrets here
// in tests that verify NEEXIT's scrubbing.
type Registers struct {
	GPR   [16]uint64
	Flags uint64
}

// Scrub zeroes the register file, as NEEXIT and AEX do so that "all the
// information of the inner enclave" is cleared (paper §IV-B).
func (r *Registers) Scrub() { *r = Registers{} }

// IsZero reports whether every register is zero.
func (r *Registers) IsZero() bool { return *r == Registers{} }

// enclaveFrame records a suspended enclave context on the core's nested
// entry stack (the outer enclave's state while an inner enclave runs).
type enclaveFrame struct {
	secs *SECS
	tcs  *TCS
	regs Registers
}
