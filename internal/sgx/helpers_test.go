package sgx_test

import (
	"strings"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
)

// Direct tests of the nested "microcode support" surface sgx exports to
// package core, and of small accessors.

func TestNestedInfoHelpers(t *testing.T) {
	var n sgx.NestedInfo
	if n.IsInner() || n.IsOuter() || n.OuterEID() != isa.NoEnclave {
		t.Fatal("zero NestedInfo misreports")
	}
	n.OuterEIDs = []isa.EID{7}
	n.InnerEIDs = []isa.EID{3, 4}
	if !n.IsInner() || !n.IsOuter() {
		t.Fatal("populated NestedInfo misreports")
	}
	if n.OuterEID() != 7 {
		t.Fatal("OuterEID")
	}
	if !n.HasOuter(7) || n.HasOuter(8) || !n.HasInner(3) || n.HasInner(7) {
		t.Fatal("Has* lookups wrong")
	}
	n.OuterEIDs = []isa.EID{7, 8}
	defer func() {
		if recover() == nil {
			t.Fatal("OuterEID on multi-outer did not panic")
		}
	}()
	_ = n.OuterEID()
}

func TestSwitchToFromNestedLocked(t *testing.T) {
	r := newRig(t)
	outer, outerTCSV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	inner, innerTCSV := buildEnclave(t, r.k, r.p, 0x200000, 1)
	innerTCS, err := inner.FindTCS(innerTCSV)
	if err != nil {
		t.Fatal(err)
	}
	r.enter(t, outer, outerTCSV)
	r.c.Regs.GPR[0] = 111
	if err := r.m.Atomically(func() error {
		r.c.SwitchToNestedLocked(inner, innerTCS)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if r.c.Current() != inner || !innerTCS.Busy || !innerTCS.Ret() {
		t.Fatal("switch-to state wrong")
	}
	if r.c.NestingDepth() != 2 {
		t.Fatalf("depth %d", r.c.NestingDepth())
	}
	if innerTCS.RetFrameEID() != outer.EID {
		t.Fatalf("ret frame EID %d", innerTCS.RetFrameEID())
	}
	if got := r.c.ExecutingEIDs(); len(got) != 2 || got[0] != inner.EID || got[1] != outer.EID {
		t.Fatalf("executing EIDs %v", got)
	}
	r.c.Regs.GPR[0] = 222 // inner-enclave register state
	if err := r.m.Atomically(func() error {
		r.c.SwitchFromNestedLocked()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if r.c.Current() != outer || innerTCS.Busy || innerTCS.Ret() {
		t.Fatal("switch-from state wrong")
	}
	if r.c.Regs.GPR[0] != 111 {
		t.Fatalf("outer registers not restored: %d", r.c.Regs.GPR[0])
	}
	r.exit(t)
}

func TestEPCFootprintAndEnclaves(t *testing.T) {
	r := newRig(t)
	s, _ := buildEnclave(t, r.k, r.p, 0x100000, 3)
	if got := r.m.EPCFootprint(s.EID); got != 5 { // 3 data + 1 TCS + SECS
		t.Fatalf("footprint %d", got)
	}
	found := false
	for _, e := range r.m.Enclaves() {
		if e.EID == s.EID {
			found = true
		}
	}
	if !found {
		t.Fatal("Enclaves() missed the enclave")
	}
	if s.String() == "" || !strings.Contains(s.String(), "eid") {
		t.Fatalf("SECS stringer: %q", s.String())
	}
	if len(s.TCSs()) != 1 {
		t.Fatalf("TCSs %d", len(s.TCSs()))
	}
}

func TestReadWriteU64(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	const v = 0x1122_3344_5566_7788
	if err := r.c.WriteU64(0x100010, v); err != nil {
		t.Fatal(err)
	}
	got, err := r.c.ReadU64(0x100010)
	if err != nil || got != v {
		t.Fatalf("u64 round trip: %#x %v", got, err)
	}
	r.exit(t)
}

func TestDefaultConfigBoots(t *testing.T) {
	m := sgx.MustNew(sgx.DefaultConfig())
	if len(m.Cores()) != 4 {
		t.Fatalf("cores %d", len(m.Cores()))
	}
	if m.Core(0).Machine() != m {
		t.Fatal("core back-pointer")
	}
	if _, ok := m.ResolveEID(999); ok {
		t.Fatal("phantom enclave resolved")
	}
	if _, err := sgx.New(sgx.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
