package sgx

import (
	"encoding/binary"
	"fmt"
)

// This file gives REPORT a canonical fixed-length wire encoding. Reports
// travel between enclaves over untrusted channels (shared memory, the OS), so
// the decoder is the attack surface: it must accept exactly the byte strings
// Encode produces and reject everything else, and Parse∘Encode must be the
// identity so a report's MAC check sees precisely the fields the sender
// bound. FuzzReportParse in fuzz_test.go drives both properties.

// ReportSize is the exact wire length of an encoded Report:
// MRENCLAVE (32) + MRSIGNER (32) + Attributes (8, little-endian) +
// ReportData (64) + TargetMRENCLAVE (32) + MAC (32).
const ReportSize = 32 + 32 + 8 + 64 + 32 + 32

// Encode serializes the report into its canonical fixed-length layout.
func (r *Report) Encode() []byte {
	out := make([]byte, 0, ReportSize)
	out = append(out, r.MRENCLAVE[:]...)
	out = append(out, r.MRSIGNER[:]...)
	out = binary.LittleEndian.AppendUint64(out, r.Attributes)
	out = append(out, r.ReportData[:]...)
	out = append(out, r.TargetMRENCLAVE[:]...)
	out = append(out, r.MAC[:]...)
	return out
}

// ParseReport decodes a canonical report. It accepts exactly ReportSize bytes
// — no prefixes, no trailing data — so every successfully parsed report
// re-encodes to the identical byte string.
func ParseReport(data []byte) (*Report, error) {
	if len(data) != ReportSize {
		return nil, fmt.Errorf("report: %d bytes, want exactly %d", len(data), ReportSize)
	}
	var r Report
	n := copy(r.MRENCLAVE[:], data)
	n += copy(r.MRSIGNER[:], data[n:])
	r.Attributes = binary.LittleEndian.Uint64(data[n:])
	n += 8
	n += copy(r.ReportData[:], data[n:])
	n += copy(r.TargetMRENCLAVE[:], data[n:])
	copy(r.MAC[:], data[n:])
	return &r, nil
}
