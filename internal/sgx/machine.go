// Package sgx implements the baseline SGX machine simulator: the enclave
// lifecycle instructions (ECREATE/EADD/EEXTEND/EINIT/EREMOVE), enclave
// entry/exit (EENTER/EEXIT/AEX/ERESUME), local attestation (EREPORT/EGETKEY),
// EPC paging (EBLOCK/ETRACK/EWB/ELDU), and — at the heart of everything —
// the TLB-miss access validator.
//
// Two extension points let package core add the paper's nested-enclave
// support without forking the baseline, mirroring how the proposal itself is
// "mostly limited to the access control mechanism" (paper §I):
//
//   - Machine.Validator: the access-validation flow consulted on TLB misses.
//     The baseline validator implements SGX's Figure-2 checks; package core
//     installs the Figure-6 flow with the inner→outer branches.
//   - Machine.Tracker: the ETRACK thread-tracking policy that decides which
//     cores need TLB shootdowns when an EPC mapping changes. Package core
//     installs the inner-enclave-aware tracker of §IV-E.
package sgx

import (
	"crypto/rand"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nestedenclave/internal/cache"
	"nestedenclave/internal/chaos"
	"nestedenclave/internal/epc"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/mee"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/tlb"
	"nestedenclave/internal/trace"
)

// Validator is the access-validation flow run during TLB-miss handling.
// Implementations receive the faulting core, the requested virtual address,
// the (untrusted) page-table entry, and the access kind, and either return
// the TLB entry to insert or reject the access.
type Validator interface {
	Validate(c *Core, v isa.VAddr, pte pt.PTE, op isa.Access) (tlb.Entry, *Outcome)
}

// Outcome describes a rejected translation.
type Outcome struct {
	// Abort means the access gets abort-page semantics: reads return all
	// ones, writes are dropped, execution faults. This is how SGX handles
	// unauthorized accesses to protected memory.
	Abort bool
	// Fault, when non-nil, is delivered instead (page faults for evicted
	// pages, permission violations, non-present mappings).
	Fault *isa.Fault
}

// Tracker decides which cores must receive a TLB-shootdown IPI when the
// virtual-to-physical mapping of an EPC page owned by enclave eid changes.
type Tracker interface {
	CoresToShootdown(m *Machine, eid isa.EID) []*Core
}

// Config sizes a machine.
type Config struct {
	Cores int
	Phys  phys.Layout
	LLC   cache.Config
	// DisableLLC models an uncached machine (ablation).
	DisableLLC bool
	// DisableMEE models plaintext PRM (ablation / attack contrast).
	DisableMEE bool
}

// DefaultConfig models the paper's 4-core i7-7700 testbed.
func DefaultConfig() Config {
	return Config{Cores: 4, Phys: phys.DefaultLayout(), LLC: cache.DefaultConfig()}
}

// SmallConfig is a reduced machine (64 MiB DRAM, 32 MiB PRM, 1 MiB LLC) for
// tests that do not depend on the full-size memory system.
func SmallConfig() Config {
	return Config{
		Cores: 4,
		Phys:  phys.Layout{DRAMSize: 64 << 20, PRMBase: 16 << 20, PRMSize: 32 << 20},
		LLC:   cache.Config{SizeBytes: 1 << 20, Ways: 16},
	}
}

// Machine is the simulated SGX-enabled processor package plus DRAM.
type Machine struct {
	// mu guards the shared memory system and machine-global state. The hot
	// data-access path (translate + validate on TLB miss) only *reads*
	// machine-global structures — the EPCM, SECS association lists, and the
	// COW page tables — so it runs under the read lock and cores proceed in
	// parallel; every instruction that mutates machine state (lifecycle,
	// transitions, paging, NASSO) takes the write lock and so still excludes
	// all accesses, exactly like the old exclusive lock did. Per-core state
	// (TLB, registers, enclave stack) is owned by the one goroutine driving
	// that core; cross-core TLB shootdowns happen under the write lock only.
	// The LLC serializes internally (it is the one mutable structure on the
	// read path).
	mu sync.RWMutex

	DRAM *phys.Memory
	MEE  *mee.Engine
	LLC  *cache.Cache
	EPC  *epc.Manager
	Rec  *trace.Recorder

	Validator Validator
	Tracker   Tracker

	cores     []*Core
	secsByEID map[isa.EID]*SECS
	nextEID   isa.EID

	// assocEpoch versions the machine's enclave-association graph: NASSO and
	// EREMOVE bump it, invalidating the outer-closure caches the Figure-6
	// validator keeps on each SECS (see SECS.CachedOuterChain).
	assocEpoch atomic.Uint64

	platformSecret []byte

	// Version-array state for EPC paging freshness (see paging.go).
	vaSlots    map[uint64]bool
	vaSlotNext uint64
	blobVer    map[blobKey]uint64 // monotonic eviction counter per (owner, vaddr)

	// Chaos, when set, injects runtime faults at the machine's hook points
	// (AEX storms, core stalls). Install with SetChaos before driving
	// workloads; the field is read without the machine lock.
	Chaos *chaos.Injector

	// Preempt, when set, is the adversarial scheduler's interposition point:
	// consulted (without the machine lock — AEX/EResume take it) before each
	// access chunk on a core executing in enclave mode. A malicious kernel
	// uses it for targeted AEX preemption and wrong-core ERESUME. Install
	// before driving workloads; nil-cost when unset.
	Preempt func(c *Core)

	// poisoned marks enclaves whose protected memory failed MEE integrity
	// verification (or whose trusted code crashed): entry and resumption
	// are refused with a machine-check fault until the enclave is removed.
	// Guarded by pmu — its own leaf lock, not mu, because the MEE's poison
	// callback fires from inside the cache hierarchy on the read-locked
	// access path, where mu cannot be upgraded.
	pmu      sync.Mutex
	poisoned map[isa.EID]string //nescheck:guard pmu
}

// New builds a machine with the baseline SGX validator and tracker.
func New(cfg Config) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sgx: need at least one core")
	}
	rec := &trace.Recorder{}
	dram, err := phys.New(cfg.Phys)
	if err != nil {
		return nil, err
	}
	eng, err := mee.New(dram, rec)
	if err != nil {
		return nil, err
	}
	eng.Enabled = !cfg.DisableMEE
	llc, err := cache.New(cfg.LLC, eng, rec)
	if err != nil {
		return nil, err
	}
	llc.Enabled = !cfg.DisableLLC
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("sgx: platform secret: %v", err)
	}
	m := &Machine{
		DRAM:           dram,
		MEE:            eng,
		LLC:            llc,
		EPC:            epc.NewManager(dram),
		Rec:            rec,
		secsByEID:      make(map[isa.EID]*SECS),
		nextEID:        1,
		platformSecret: secret,
		poisoned:       make(map[isa.EID]string),
	}
	// An MEE integrity failure is contained to the enclave owning the
	// tampered line: real hardware drops-and-locks the whole package, but
	// for the robustness story we model the finer-grained machine-check
	// containment (poison the owner, refuse re-entry, let the host EREMOVE
	// and restart it).
	eng.Poison = func(p isa.PAddr) {
		if ent, ok := m.EPC.EntryAt(p); ok && ent.Owner != 0 {
			m.poison(ent.Owner, fmt.Sprintf("MEE integrity failure at %#x", uint64(p)))
		}
	}
	m.Validator = BaselineValidator{}
	m.Tracker = BaselineTracker{}
	for i := 0; i < cfg.Cores; i++ {
		t := tlb.New(rec)
		t.CoreID = i
		m.cores = append(m.cores, &Core{m: m, ID: i, TLB: t})
	}
	return m, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Cores returns the machine's cores.
func (m *Machine) Cores() []*Core { return m.cores }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Enclave looks up a live enclave by identity.
func (m *Machine) Enclave(eid isa.EID) (*SECS, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.secsByEID[eid]
	return s, ok
}

// AssocEpoch returns the current version of the enclave-association graph.
// Validator-side caches keyed by it are invalid once it moves.
func (m *Machine) AssocEpoch() uint64 { return m.assocEpoch.Load() }

// BumpAssocEpoch invalidates every cached outer-closure: called by NASSO and
// EREMOVE, the two operations that change the association graph.
func (m *Machine) BumpAssocEpoch() { m.assocEpoch.Add(1) }

// ResolveEID looks up an enclave without taking the machine lock. It exists
// for Validator and Tracker implementations, which always run with the lock
// already held; other callers must use Enclave.
func (m *Machine) ResolveEID(eid isa.EID) (*SECS, bool) {
	s, ok := m.secsByEID[eid]
	return s, ok
}

// Enclaves returns all live enclaves (for audits and footprint accounting),
// sorted by EID so consumers iterate in a replay-stable order regardless of
// the map's internal layout.
func (m *Machine) Enclaves() []*SECS {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*SECS, 0, len(m.secsByEID))
	for _, s := range m.secsByEID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EID < out[j].EID })
	return out
}

// Core is one logical processor.
type Core struct {
	m  *Machine
	ID int

	// TLB is the core's translation cache.
	TLB *tlb.TLB
	// PT is the currently active address space, installed by the kernel
	// scheduler (CR3). Untrusted.
	PT *pt.Table

	// Regs is the architectural register file visible to the running code.
	Regs Registers

	// inEnclave / cur / curTCS describe the current protection context.
	// Suspended outer frames of nested entries live in the TCS chain
	// (TCS.ret), not on the core, so they survive ocall round trips.
	inEnclave bool
	cur       *SECS
	curTCS    *TCS

	// PFHandler, when set, is invoked for page faults raised by memory
	// accesses (the kernel's fault handler: it can reload evicted EPC pages
	// and retry). Installed by package kos.
	PFHandler func(c *Core, f *isa.Fault) bool
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

// InEnclave reports whether the core executes in enclave mode.
func (c *Core) InEnclave() bool { return c.inEnclave }

// Current returns the SECS of the enclave the core is executing, if any.
func (c *Core) Current() *SECS {
	if !c.inEnclave {
		return nil
	}
	return c.cur
}

// CurrentTCS returns the active TCS, if any.
func (c *Core) CurrentTCS() *TCS { return c.curTCS }

// BillEID returns the attribution identity for the core's current execution:
// the EID of the enclave it runs, or trace.NoEID outside enclave mode.
func (c *Core) BillEID() uint64 {
	if c.inEnclave && c.cur != nil {
		return uint64(c.cur.EID)
	}
	return trace.NoEID
}

// NestingDepth returns how many enclave frames are active on the core
// (1 inside a top-level enclave, 2 inside an inner enclave, ...).
func (c *Core) NestingDepth() int {
	if !c.inEnclave {
		return 0
	}
	return 1 + len(c.curTCS.retChainEIDs())
}

// ExecutingEIDs returns the EIDs of every enclave with live context on the
// core: the current enclave and all suspended outer frames. Used by the
// ETRACK thread-tracking policies.
func (c *Core) ExecutingEIDs() []isa.EID {
	if !c.inEnclave || c.cur == nil {
		return nil
	}
	return append([]isa.EID{c.cur.EID}, c.curTCS.retChainEIDs()...)
}
