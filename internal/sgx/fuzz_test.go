package sgx_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/model"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/simtest"
)

// fuzzContexts builds one machine/oracle pair (via the simtest lockstep
// runner, so both sides are synchronized by construction) with every
// protection context the Figure-6 flow distinguishes live at once:
//
//	core 0 — untrusted
//	core 1 — inner enclave, entered from the outer via NEENTER
//	core 2 — outer enclave
//	core 3 — inner enclave, EENTERed directly from untrusted code
//
// Validate mutates nothing, so one pair serves every fuzz execution.
func fuzzContexts(f *testing.F) *simtest.Runner {
	f.Helper()
	r := simtest.NewRunner(2, false)
	ops := []simtest.Op{
		{Kind: simtest.OpBuild, Slot: 0},
		{Kind: simtest.OpBuild, Slot: 1},
		{Kind: simtest.OpAssociate, Slot: 1, A: 0},
		{Kind: simtest.OpEnter, Core: 1, Slot: 0, A: 0},
		{Kind: simtest.OpNEnter, Core: 1, Slot: 1, A: 0},
		{Kind: simtest.OpEnter, Core: 2, Slot: 0, A: 1},
		{Kind: simtest.OpEnter, Core: 3, Slot: 1, A: 1},
	}
	if _, err := r.RunOps(ops); err != nil {
		f.Fatalf("context setup: %v", err)
	}
	return r
}

// FuzzAccessValidate differentially fuzzes the machine's installed access
// validator (the Figure-6 implementation in internal/core) against the model
// oracle's pure Validate: for every (core, vaddr, fabricated PTE, access)
// tuple the fuzzer invents, both must agree on the verdict and — when the
// access is allowed — on the physical page and effective permissions of the
// TLB entry that would be filled.
func FuzzAccessValidate(f *testing.F) {
	r := fuzzContexts(f)
	m := r.Machine()
	o := r.Oracle()

	// Interesting vaddrs: every page of both ELRANGEs plus one page past each,
	// the unsecure window, and an address no region claims.
	var vaddrs []isa.VAddr
	for slot := 0; slot < 2; slot++ {
		base := r.Slot(slot).Base
		for k := 0; k <= 5; k++ {
			vaddrs = append(vaddrs, base+isa.VAddr(k)*isa.PageSize)
		}
	}
	vaddrs = append(vaddrs, 0x0040_0000, 0x0040_2000, 0x0077_0000)

	// Interesting frames: every EPC page of both enclaves (SECS and TCS pages
	// included — mapping those must abort), non-PRM DRAM, and PRM frames with
	// no valid EPCM entry.
	var ppns []uint64
	for slot := 0; slot < 2; slot++ {
		for _, p := range m.EPC.PagesOf(r.Slot(slot).EID) {
			ppns = append(ppns, uint64(m.EPC.AddrOf(p))>>isa.PageShift)
		}
	}
	ppns = append(ppns,
		0x0010_0000>>isa.PageShift, // unsecure frame
		0x0070_0000>>isa.PageShift, // spare non-PRM frame
		(2<<20)>>isa.PageShift+900, // PRM frame without a valid EPCM entry
		0,
	)

	f.Add(uint8(1), uint8(0), uint8(0), uint8(7), uint8(3), uint16(0))
	f.Add(uint8(3), uint8(0), uint8(1), uint8(3), uint8(3), uint16(64))
	f.Add(uint8(0), uint8(12), uint8(12), uint8(7), uint8(2), uint16(8))
	f.Add(uint8(2), uint8(6), uint8(6), uint8(5), uint8(1), uint16(4095))

	f.Fuzz(func(t *testing.T, coreSel, vSel, pSel, permBits, flags uint8, off uint16) {
		coreID := int(coreSel) % 4
		v := vaddrs[int(vSel)%len(vaddrs)] + isa.VAddr(off)%isa.PageSize
		pte := pt.PTE{
			PPN:     ppns[int(pSel)%len(ppns)],
			Perms:   isa.Perm(permBits) & isa.PermRWX,
			Present: flags&1 != 0,
		}
		mapped := flags&2 != 0
		op := []isa.Access{isa.Read, isa.Write, isa.Execute}[int(flags>>2)%3]

		// Machine side: mirror the translate pre-checks (walk, present), then
		// ask the installed validator.
		var got model.Verdict
		var gotEntry model.TLBEntry
		switch {
		case !mapped || !pte.Present:
			got = model.VPF
		default:
			entry, outcome := m.Validator.Validate(m.Core(coreID), v, pte, op)
			switch {
			case outcome == nil:
				got = model.VOK
				gotEntry = model.TLBEntry{PPN: entry.PPN, Perms: entry.Perms}
			case outcome.Abort:
				got = model.VAbort
			case outcome.Fault.Class == isa.FaultPF:
				got = model.VPF
			case outcome.Fault.Class == isa.FaultGP:
				got = model.VGP
			default:
				t.Fatalf("validator returned unclassifiable outcome %+v", outcome)
			}
		}

		want, wantEntry := o.Validate(coreID, uint64(v),
			model.PTE{Mapped: mapped, Present: pte.Present, PPN: pte.PPN, Perms: pte.Perms}, op)
		if got != want {
			t.Fatalf("core %d %v %#x pte{ppn %#x perms %v present %v mapped %v}: machine %v, oracle %v",
				coreID, op, uint64(v), pte.PPN, pte.Perms, pte.Present, mapped, got, want)
		}
		if got == model.VOK && (gotEntry.PPN != wantEntry.PPN || gotEntry.Perms != wantEntry.Perms) {
			t.Fatalf("core %d %v %#x: machine fills ppn %#x perms %v, oracle ppn %#x perms %v",
				coreID, op, uint64(v), gotEntry.PPN, gotEntry.Perms, wantEntry.PPN, wantEntry.Perms)
		}
	})
}

// FuzzReportParse fuzzes the REPORT wire codec: the decoder must accept
// exactly ReportSize-byte strings, Parse∘Encode must be the identity on them,
// and a parsed-then-reencoded report must round-trip field-for-field — so the
// MAC a verifier checks covers precisely the bytes the sender emitted.
func FuzzReportParse(f *testing.F) {
	valid := &sgx.Report{Attributes: 0x1234}
	copy(valid.MRENCLAVE[:], bytes.Repeat([]byte{0xaa}, 32))
	copy(valid.ReportData[:], []byte("channel-binding nonce"))
	enc := valid.Encode()
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(append(append([]byte{}, enc...), 0x00))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, sgx.ReportSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := sgx.ParseReport(data)
		if len(data) != sgx.ReportSize {
			if err == nil {
				t.Fatalf("parsed %d bytes, want exactly-%d-byte strictness", len(data), sgx.ReportSize)
			}
			return
		}
		if err != nil {
			t.Fatalf("rejected a %d-byte report: %v", sgx.ReportSize, err)
		}
		re := r.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("Parse∘Encode not identity:\n in  %x\n out %x", data, re)
		}
		r2, err := sgx.ParseReport(re)
		if err != nil || *r2 != *r {
			t.Fatalf("re-parse mismatch (err=%v)", err)
		}
	})
}
