package sgx_test

import (
	"bytes"
	"strings"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sgx"
)

// buildEnclave constructs a minimal enclave by hand: nData RW data pages and
// one TCS, measured, signed and initialized — the low-level path the SDK
// automates.
func buildEnclave(t *testing.T, k *kos.Kernel, p *kos.Process, base isa.VAddr, nData int) (*sgx.SECS, isa.VAddr) {
	t.Helper()
	size := uint64(nData+1) * isa.PageSize
	s, err := k.Driver.CreateEnclave(base, size, 0)
	if err != nil {
		t.Fatalf("ECREATE: %v", err)
	}
	b := measure.NewBuilder()
	b.ECreate(size, 0)
	content := bytes.Repeat([]byte{0x5a}, isa.PageSize)
	for i := 0; i < nData; i++ {
		v := base + isa.VAddr(i)*isa.PageSize
		if err := k.Driver.AddPage(p, s, sgx.AddPageArgs{
			Vaddr: v, Type: isa.PTReg, Perms: isa.PermRW, Content: content, Measure: true,
		}); err != nil {
			t.Fatalf("EADD data %d: %v", i, err)
		}
		b.EAdd(uint64(v-base), isa.PTReg, isa.PermRW)
		for ch := 0; ch < isa.PageSize; ch += isa.ExtendChunk {
			b.EExtend(uint64(v-base)+uint64(ch), content[ch:ch+isa.ExtendChunk])
		}
	}
	tcsV := base + isa.VAddr(nData)*isa.PageSize
	if err := k.Driver.AddPage(p, s, sgx.AddPageArgs{Vaddr: tcsV, Type: isa.PTTCS}); err != nil {
		t.Fatalf("EADD tcs: %v", err)
	}
	b.EAdd(uint64(tcsV-base), isa.PTTCS, 0)
	author := measure.MustNewAuthor()
	cert := author.Sign(b.Finalize(), nil, nil)
	if err := k.Driver.InitEnclave(s, cert); err != nil {
		t.Fatalf("EINIT: %v", err)
	}
	return s, tcsV
}

type rig struct {
	m *sgx.Machine
	k *kos.Kernel
	p *kos.Process
	c *sgx.Core
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := sgx.MustNew(sgx.SmallConfig())
	k := kos.New(m)
	p := k.NewProcess()
	c := m.Core(0)
	if err := k.Schedule(c, p); err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, k: k, p: p, c: c}
}

func (r *rig) enter(t *testing.T, s *sgx.SECS, tcsV isa.VAddr) {
	t.Helper()
	if err := r.m.EEnter(r.c, s, tcsV, false); err != nil {
		t.Fatalf("EENTER: %v", err)
	}
}

func (r *rig) exit(t *testing.T) {
	t.Helper()
	if err := r.m.EExit(r.c, true); err != nil {
		t.Fatalf("EEXIT: %v", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	r := newRig(t)
	// Misaligned ELRANGE.
	if _, err := r.m.ECreate(0x1001, isa.PageSize, 0); err == nil {
		t.Error("misaligned base accepted")
	}
	if _, err := r.m.ECreate(0x1000, 100, 0); err == nil {
		t.Error("misaligned size accepted")
	}
	s, err := r.m.ECreate(0x10000, 2*isa.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// EADD outside ELRANGE.
	if _, err := r.m.EAdd(s, sgx.AddPageArgs{Vaddr: 0x90000, Type: isa.PTReg, Perms: isa.PermRW}); err == nil {
		t.Error("EADD outside ELRANGE accepted")
	}
	// Misaligned EADD.
	if _, err := r.m.EAdd(s, sgx.AddPageArgs{Vaddr: 0x10008, Type: isa.PTReg, Perms: isa.PermRW}); err == nil {
		t.Error("misaligned EADD accepted")
	}
	// Oversized content.
	if _, err := r.m.EAdd(s, sgx.AddPageArgs{Vaddr: 0x10000, Type: isa.PTReg, Perms: isa.PermRW, Content: make([]byte, isa.PageSize+1)}); err == nil {
		t.Error("oversized content accepted")
	}
	// SECS page type not addable.
	if _, err := r.m.EAdd(s, sgx.AddPageArgs{Vaddr: 0x10000, Type: isa.PTSECS}); err == nil {
		t.Error("EADD of PT_SECS accepted")
	}
	// EINIT without certificate.
	if err := r.m.EInit(s, nil); err == nil {
		t.Error("EINIT without SIGSTRUCT accepted")
	}
	// EINIT with a certificate for a different measurement.
	author := measure.MustNewAuthor()
	var wrong measure.Digest
	wrong[0] = 0xEE
	if err := r.m.EInit(s, author.Sign(wrong, nil, nil)); err == nil {
		t.Error("EINIT with wrong measurement accepted")
	}
	if !strings.Contains(r.m.EInit(s, author.Sign(wrong, nil, nil)).Error(), "measurement mismatch") {
		t.Error("wrong error for measurement mismatch")
	}
}

func TestEINITMeasurementMatchesAndDoubleInitRejected(t *testing.T) {
	r := newRig(t)
	s, _ := buildEnclave(t, r.k, r.p, 0x100000, 1)
	if !s.Initialized || s.MRENCLAVE.IsZero() || s.MRSIGNER.IsZero() {
		t.Fatal("enclave not properly initialized")
	}
	if err := r.m.EInit(s, s.Cert); err == nil {
		t.Fatal("double EINIT accepted")
	}
}

func TestEnclaveReadWriteAndTamper(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 2)
	r.enter(t, s, tcsV)
	data := []byte("enclave-resident secret")
	if err := r.c.Write(0x100010, data); err != nil {
		t.Fatalf("enclave write: %v", err)
	}
	got, err := r.c.Read(0x100010, len(data))
	if err != nil {
		t.Fatalf("enclave read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
	// Initial page content (0x5a fill) is visible where not overwritten.
	got2, _ := r.c.Read(0x100800, 4)
	if !bytes.Equal(got2, []byte{0x5a, 0x5a, 0x5a, 0x5a}) {
		t.Fatalf("initial content = %v", got2)
	}
	r.exit(t)

	// Physical tamper of the EPC page is detected as #MC on next access.
	if err := r.m.LLC.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pa, ok := r.p.PageTable().Translate(0x100010)
	if !ok {
		t.Fatal("no translation")
	}
	r.m.DRAM.TamperByte(pa, 0x80)
	r.enter(t, s, tcsV)
	_, err = r.c.Read(0x100010, len(data))
	if !isa.IsFault(err, isa.FaultMC) {
		t.Fatalf("tampered read returned %v, want #MC", err)
	}
	r.exit(t)
}

func TestTCSStateMachine(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	// Re-entering a busy TCS from another core fails.
	c2 := r.m.Core(1)
	if err := r.k.Schedule(c2, r.p); err != nil {
		t.Fatal(err)
	}
	if err := r.m.EEnter(c2, s, tcsV, false); err == nil {
		t.Fatal("EENTER into busy TCS accepted")
	}
	// Double-enter on the same core fails (already in enclave mode).
	if err := r.m.EEnter(r.c, s, tcsV, false); err == nil {
		t.Fatal("EENTER while in enclave mode accepted")
	}
	r.exit(t)
	// EEXIT out of enclave mode fails.
	if err := r.m.EExit(r.c, true); err == nil {
		t.Fatal("EEXIT outside enclave accepted")
	}
	// Resume into an idle TCS fails.
	if err := r.m.EEnter(r.c, s, tcsV, true); err == nil {
		t.Fatal("resume into idle TCS accepted")
	}
	// Entering an uninitialized enclave fails.
	s2, err := r.m.ECreate(0x900000, isa.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.m.EEnter(r.c, s2, 0x900000, false); err == nil {
		t.Fatal("EENTER into uninitialized enclave accepted")
	}
}

func TestOCallKeepsTCSBusy(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	if err := r.m.EExit(r.c, false); err != nil { // ocall-style exit
		t.Fatal(err)
	}
	// TCS stays claimed: a fresh EENTER by another thread must fail...
	c2 := r.m.Core(1)
	if err := r.k.Schedule(c2, r.p); err != nil {
		t.Fatal(err)
	}
	if err := r.m.EEnter(c2, s, tcsV, false); err == nil {
		t.Fatal("TCS stolen during ocall window")
	}
	// ...while the owner resumes fine.
	if err := r.m.EEnter(r.c, s, tcsV, true); err != nil {
		t.Fatalf("resume: %v", err)
	}
	r.exit(t)
}

func TestAEXAndERESUME(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	r.c.Regs.GPR[3] = 0x1234
	tcs, err := s.FindTCS(tcsV)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.m.AEX(r.c); err != nil {
		t.Fatal(err)
	}
	if r.c.InEnclave() {
		t.Fatal("core still in enclave after AEX")
	}
	if !r.c.Regs.IsZero() {
		t.Fatal("AEX leaked registers to the exception handler")
	}
	if err := r.m.EResume(r.c, tcs); err != nil {
		t.Fatal(err)
	}
	if !r.c.InEnclave() || r.c.Regs.GPR[3] != 0x1234 {
		t.Fatal("ERESUME did not restore context")
	}
	r.exit(t)
	// ERESUME without saved state fails.
	if err := r.m.EResume(r.c, tcs); err == nil {
		t.Fatal("ERESUME without SSA accepted")
	}
	// AEX outside enclave fails.
	if err := r.m.AEX(r.c); err == nil {
		t.Fatal("AEX outside enclave accepted")
	}
}

func TestKernelAliasAttackAborted(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 2)
	sVictim, tcsV2 := buildEnclave(t, r.k, r.p, 0x200000, 1)

	// Victim enclave stores a secret.
	if err := r.m.EEnter(r.c, sVictim, tcsV2, false); err != nil {
		t.Fatal(err)
	}
	secret := []byte("victim-enclave-secret")
	if err := r.c.Write(0x200000, secret); err != nil {
		t.Fatal(err)
	}
	if err := r.m.EExit(r.c, true); err != nil {
		t.Fatal(err)
	}

	// Malicious kernel remaps the attacker enclave's page onto the victim's
	// EPC frame.
	victimPA, _ := r.p.PageTable().Translate(0x200000)
	r.p.MapFixed(0x100000, victimPA.PageBase(), isa.PermRW)

	r.enter(t, s, tcsV)
	got, err := r.c.Read(0x100000, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got, secret[:8]) {
		t.Fatal("EPCM owner check bypassed: alias attack leaked data")
	}
	r.exit(t)

	// Kernel also tries remapping the victim page at a *different* vaddr
	// inside the attacker's own ELRANGE — the EPCM vaddr check kills it too.
	r.p.MapFixed(0x101000, victimPA.PageBase(), isa.PermRW)
	r.enter(t, s, tcsV)
	got, err = r.c.Read(0x101000, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("vaddr-mismatch access not aborted: %v", got)
		}
	}
	r.exit(t)
}

func TestVaddrAliasWithinOwnEnclaveAborted(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 2)
	// Kernel aliases page 1's frame at page 0's vaddr: EPCM says frame
	// belongs at 0x101000, so an access via 0x100000 must abort.
	pa1, _ := r.p.PageTable().Translate(0x101000)
	r.p.MapFixed(0x100000, pa1.PageBase(), isa.PermRW)
	r.enter(t, s, tcsV)
	got, err := r.c.Read(0x100000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("aliased EPC access not aborted: %v", got)
		}
	}
	r.exit(t)
}

func TestNoExecuteFromUnsecureMemory(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	// Host maps ordinary memory as executable.
	uv, err := r.p.Mmap(isa.PageSize, isa.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	// Outside an enclave, fetching it works.
	if err := r.c.Fetch(uv); err != nil {
		t.Fatalf("non-enclave fetch: %v", err)
	}
	// Inside, the X permission is stripped.
	r.enter(t, s, tcsV)
	if err := r.c.Fetch(uv); err == nil {
		t.Fatal("enclave executed unsecure memory")
	}
	// But data reads of unsecure memory from the enclave are fine.
	if _, err := r.c.Read(uv, 8); err != nil {
		t.Fatalf("enclave read of unsecure memory: %v", err)
	}
	r.exit(t)
}

func TestSECSAndTCSPagesInaccessible(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	// The TCS page is mapped in the process but EPCM type PT_TCS blocks
	// software access even for the owner.
	got, err := r.c.Read(tcsV, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("TCS page readable by software: %v", got)
		}
	}
	r.exit(t)
}

func TestReportAndKeys(t *testing.T) {
	r := newRig(t)
	s1, t1 := buildEnclave(t, r.k, r.p, 0x100000, 1)
	// A different page count gives s2 a distinct MRENCLAVE; two identical
	// builds would measure identically (and rightly share report keys).
	s2, t2 := buildEnclave(t, r.k, r.p, 0x200000, 2)
	if s1.MRENCLAVE == s2.MRENCLAVE {
		t.Fatal("distinct enclaves measured identically")
	}

	// s1 reports to s2.
	r.enter(t, s1, t1)
	var data [64]byte
	copy(data[:], "nonce")
	rep, err := r.m.EReport(r.c, s2.MRENCLAVE, data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MRENCLAVE != s1.MRENCLAVE {
		t.Fatal("report misattributes the caller")
	}
	// s1 cannot verify a report addressed to s2.
	if err := r.m.VerifyReport(r.c, rep); err == nil {
		t.Fatal("wrong target verified a report")
	}
	r.exit(t)

	r.enter(t, s2, t2)
	if err := r.m.VerifyReport(r.c, rep); err != nil {
		t.Fatalf("target verify: %v", err)
	}
	// Tampered report data fails.
	rep.ReportData[0] ^= 1
	if err := r.m.VerifyReport(r.c, rep); err == nil {
		t.Fatal("tampered report verified")
	}
	rep.ReportData[0] ^= 1

	// Sealing keys separate by identity.
	k2, err := r.m.EGetKey(r.c, measure.KeySeal, sgx.SealToEnclave, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.exit(t)
	r.enter(t, s1, t1)
	k1, err := r.m.EGetKey(r.c, measure.KeySeal, sgx.SealToEnclave, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.exit(t)
	if k1 == k2 {
		t.Fatal("different enclaves derived the same sealing key")
	}
	// EREPORT/EGETKEY require enclave mode.
	if _, err := r.m.EReport(r.c, s2.MRENCLAVE, data); err == nil {
		t.Fatal("EREPORT outside enclave accepted")
	}
	if _, err := r.m.EGetKey(r.c, measure.KeySeal, sgx.SealToEnclave, nil); err == nil {
		t.Fatal("EGETKEY outside enclave accepted")
	}
}

func TestDestroyEnclaveAndEIDReuse(t *testing.T) {
	r := newRig(t)
	s, _ := buildEnclave(t, r.k, r.p, 0x100000, 1)
	eid := s.EID
	free := r.m.EPC.FreePages()
	if err := r.k.Driver.DestroyEnclave(r.p, s); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.m.Enclave(eid); ok {
		t.Fatal("destroyed enclave still resolvable")
	}
	if r.m.EPC.FreePages() != free+3 { // 1 data + 1 TCS + 1 SECS
		t.Fatalf("EPC pages not reclaimed: %d -> %d", free, r.m.EPC.FreePages())
	}
	// A fresh enclave gets a fresh EID.
	s2, _ := buildEnclave(t, r.k, r.p, 0x100000, 1)
	if s2.EID == eid {
		t.Fatal("EID reused")
	}
}

func TestERemoveConstraints(t *testing.T) {
	r := newRig(t)
	s, _ := buildEnclave(t, r.k, r.p, 0x300000, 1)
	pages := r.m.EPC.PagesOf(s.EID)
	var secsPage = -1
	for _, p := range pages {
		if r.m.EPC.Entry(p).Type == isa.PTSECS {
			secsPage = p
		}
	}
	if err := r.m.ERemove(secsPage); err == nil {
		t.Fatal("SECS removed while enclave pages remain")
	}
}
