package sgx_test

import (
	"bytes"
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

func TestEvictionRoundTrip(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 2)

	// Store a secret, then exit (flushing the TLB so eviction can proceed).
	r.enter(t, s, tcsV)
	secret := []byte("survives-a-trip-through-untrusted-swap")
	if err := r.c.Write(0x100040, secret); err != nil {
		t.Fatal(err)
	}
	r.exit(t)

	free := r.m.EPC.FreePages()
	if err := r.k.Driver.EvictPage(r.p, s, 0x100000); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if r.m.EPC.FreePages() != free+1 {
		t.Fatal("EWB did not free the EPC page")
	}
	if r.k.Driver.EvictedCount() != 1 {
		t.Fatal("blob not stored")
	}

	// The next enclave access faults, the kernel reloads transparently, and
	// the data is intact.
	r.enter(t, s, tcsV)
	got, err := r.c.Read(0x100040, len(secret))
	if err != nil {
		t.Fatalf("read after eviction: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("data corrupted across eviction: %q", got)
	}
	r.exit(t)
	if r.k.Driver.EvictedCount() != 0 {
		t.Fatal("blob not consumed on reload")
	}
	if r.m.Rec.Get(trace.EvEWB) == 0 || r.m.Rec.Get(trace.EvELD) == 0 {
		t.Fatal("paging events not counted")
	}
}

func TestEvictedBlobIsOpaqueToKernel(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	secret := []byte("kernel-must-not-see-this-in-swap")
	if err := r.c.Write(0x100000, secret); err != nil {
		t.Fatal(err)
	}
	r.exit(t)
	pageIdx := r.m.EPC.PagesOf(s.EID)
	_ = pageIdx
	// Evict by hand so we hold the blob.
	var idx = -1
	for _, i := range r.m.EPC.PagesOf(s.EID) {
		if e := r.m.EPC.Entry(i); e.Type == isa.PTReg {
			idx = i
		}
	}
	if err := r.m.EBlock(idx); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.m.ETrack(s) {
		r.m.Shootdown(c)
	}
	blob, err := r.m.EWB(idx)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob.Cipher, secret[:8]) {
		t.Fatal("evicted blob contains plaintext")
	}
	// Tampering with the blob is detected at reload.
	blob.Cipher[0] ^= 1
	if _, err := r.m.ELDU(blob); err == nil {
		t.Fatal("tampered blob reloaded")
	}
	blob.Cipher[0] ^= 1
	page, err := r.m.ELDU(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Replay of the consumed blob is rejected (freshness).
	if _, err := r.m.ELDU(blob); err == nil {
		t.Fatal("replayed blob reloaded")
	}
	_ = page
}

func TestEWBRefusesWithStaleTranslations(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	// Enter and touch the page so the TLB holds its translation, and STAY
	// in the enclave (no exit, no flush).
	r.enter(t, s, tcsV)
	if _, err := r.c.Read(0x100000, 8); err != nil {
		t.Fatal(err)
	}
	r.k.Driver.SkipShootdown = true
	err := r.k.Driver.EvictPage(r.p, s, 0x100000)
	if err == nil {
		t.Fatal("EWB succeeded with a live TLB translation and no shootdown")
	}
	r.k.Driver.SkipShootdown = false
	// With the protocol followed, the same eviction succeeds: ETRACK names
	// this core, the IPI flushes its TLB.
	// First unblock: the failed attempt left the page blocked, which is
	// fine — retry the full protocol.
	if err := r.k.Driver.EvictPage(r.p, s, 0x100000); err != nil {
		t.Fatalf("evict after shootdown: %v", err)
	}
	// The in-enclave access now faults and transparently reloads.
	got, err := r.c.Read(0x100000, 4)
	if err != nil {
		t.Fatalf("read after reload: %v", err)
	}
	if !bytes.Equal(got, []byte{0x5a, 0x5a, 0x5a, 0x5a}) {
		t.Fatalf("reloaded content: %v", got)
	}
	r.exit(t)
}

func TestBlockedPageFaultsInsteadOfAborting(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	var idx = -1
	for _, i := range r.m.EPC.PagesOf(s.EID) {
		if e := r.m.EPC.Entry(i); e.Type == isa.PTReg {
			idx = i
		}
	}
	if err := r.m.EBlock(idx); err != nil {
		t.Fatal(err)
	}
	r.enter(t, s, tcsV)
	_, err := r.c.Read(0x100000, 4)
	if !isa.IsFault(err, isa.FaultPF) {
		t.Fatalf("blocked page access returned %v, want #PF", err)
	}
	r.exit(t)
	// EBLOCK of SECS pages is refused.
	for _, i := range r.m.EPC.PagesOf(s.EID) {
		if e := r.m.EPC.Entry(i); e.Type == isa.PTSECS {
			if err := r.m.EBlock(i); err == nil {
				t.Fatal("EBLOCK of SECS accepted")
			}
		}
	}
	// EWB without EBLOCK is refused.
	var tcsIdx = -1
	for _, i := range r.m.EPC.PagesOf(s.EID) {
		if e := r.m.EPC.Entry(i); e.Type == isa.PTTCS {
			tcsIdx = i
		}
	}
	if _, err := r.m.EWB(tcsIdx); err == nil {
		t.Fatal("EWB of unblocked page accepted")
	}
}

func TestAuditTLBsDetectsStaleEntries(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	if _, err := r.c.Read(0x100000, 4); err != nil {
		t.Fatal(err)
	}
	if bad := r.m.AuditTLBs(); len(bad) != 0 {
		t.Fatalf("clean state audited dirty: %v", bad)
	}
	// Block the page while its translation is live: the audit flags it.
	for _, i := range r.m.EPC.PagesOf(s.EID) {
		if e := r.m.EPC.Entry(i); e.Type == isa.PTReg {
			if err := r.m.EBlock(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if bad := r.m.AuditTLBs(); len(bad) == 0 {
		t.Fatal("stale translation not detected")
	}
	r.exit(t)
}
