package sgx

import (
	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// This file implements enclave fault containment: an enclave whose protected
// memory failed MEE integrity verification, or whose trusted code crashed, is
// *poisoned* — entry and resumption are refused with a machine-check fault,
// its execution context can be force-scrubbed off a core, and EREMOVE of its
// SECS clears the mark so the host can rebuild it. Real SGX hardware
// drops-and-locks the whole package on an MEE machine check; the
// finer-grained per-enclave containment modeled here is what lets the
// self-healing supervisor (package sdk) tear down and restart only the
// victim.

// SetChaos installs (or, with nil, removes) the runtime fault injector on the
// machine's hook points, including the MEE's DRAM-fetch path. Must be called
// before workloads start driving cores — the hook points read the injector
// without synchronization.
func (m *Machine) SetChaos(inj *chaos.Injector) {
	m.Chaos = inj
	m.MEE.Chaos = inj
}

// poison marks an enclave poisoned. The map lives under its own leaf lock
// (pmu), so this is callable from any context — including the MEE's
// integrity-failure callback, which fires inside the cache hierarchy on the
// read-locked access path. The first reason sticks; repeat poisonings of a
// dying enclave do not rewrite it.
func (m *Machine) poison(eid isa.EID, reason string) {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	if _, ok := m.poisoned[eid]; ok {
		return
	}
	m.poisoned[eid] = reason
	m.Rec.ChargeTo(uint64(eid), trace.NoCore, trace.EvFaultMC, 0)
}

// PoisonEnclave marks an enclave poisoned: further EENTER/ERESUME/NEENTER
// are refused with a machine-check fault until the enclave is EREMOVEd.
// Used by the SDK when trusted code crashes inside the enclave.
func (m *Machine) PoisonEnclave(eid isa.EID, reason string) {
	m.poison(eid, reason)
}

// PoisonedReason reports whether the enclave is poisoned and why.
func (m *Machine) PoisonedReason(eid isa.EID) (string, bool) {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	r, ok := m.poisoned[eid]
	return r, ok
}

// PoisonedLocked reports poisoning from callers already inside Atomically
// (the NEENTER flow in package core). The poison mark lives under its own
// leaf lock, so the machine lock is not required — the name records the
// calling convention, not the implementation.
func (m *Machine) PoisonedLocked(eid isa.EID) bool {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	_, ok := m.poisoned[eid]
	return ok
}

// EmergencyExit force-evacuates a core from enclave mode after a contained
// crash: registers are scrubbed, the TLB flushed, the current TCS and every
// TCS holding a suspended frame of the nested chain are scrubbed and
// released, and the core returns to non-enclave mode. It returns the EIDs of
// every enclave whose context was torn down (innermost first), so the caller
// can attribute the crash. A no-op returning nil when the core is not in
// enclave mode.
//
// This is deliberately *not* an architectural instruction: it models the
// microcode cleanup a machine check performs so that no enclave secrets
// survive in registers or suspended frames of a crashed chain.
func (m *Machine) EmergencyExit(c *Core) []isa.EID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.inEnclave {
		return nil
	}
	var torn []isa.EID
	torn = append(torn, c.cur.EID)
	torn = append(torn, c.curTCS.retChainEIDs()...)
	// Scrub the whole suspended-frame chain: each TCS in it drops its
	// frame, saved state, and busy claim.
	for t := c.curTCS; t != nil; {
		next := (*TCS)(nil)
		if t.ret != nil {
			next = t.ret.tcs
		}
		t.ret = nil
		t.ssa = nil
		t.Busy = false
		t = next
	}
	delete(c.cur.epochEntries, c.ID)
	c.Regs.Scrub()
	c.TLB.FlushAll()
	c.inEnclave = false
	c.cur = nil
	c.curTCS = nil
	c.TLB.BillEID = trace.NoEID
	m.Rec.ChargeTo(uint64(torn[0]), c.ID, trace.EvAEX, trace.CostAEX)
	return torn
}

// ScrubTCS force-idles a TCS that was stranded busy by a contained crash
// (e.g. the core was evacuated by a failed ERESUME after the owning enclave
// was poisoned). Saved state and suspended frames are discarded.
func (m *Machine) ScrubTCS(t *TCS) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t.ssa = nil
	t.ret = nil
	t.Busy = false
}
