package sgx

import (
	"fmt"

	"nestedenclave/internal/isa"
)

// AuditInvariants checks Costan & Devadas' security invariants 1–3 (paper
// §VII-A) over every core's TLB against the current protection state, and
// returns one message per violation (empty = clean). It is the product-level
// version of the audit the differential-test harness runs per step; the
// chaos soak calls it after a fault-injection campaign to prove the machine
// ended in a sound state.
func (m *Machine) AuditInvariants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, c := range m.cores {
		var cur *SECS
		if c.inEnclave {
			cur = c.cur
		}
		for _, e := range c.TLB.Entries() {
			pa := isa.PAddr(e.PPN << isa.PageShift)
			v := isa.VAddr(e.VPN << isa.PageShift)
			inPRM := m.DRAM.PageInPRM(pa)
			if cur == nil {
				if inPRM {
					out = append(out, fmt.Sprintf("inv1: core %d maps %#x -> PRM outside enclave mode", c.ID, uint64(v)))
				}
				continue
			}
			if !cur.ContainsVPN(e.VPN) {
				if inPRM {
					out = append(out, fmt.Sprintf("inv2: core %d out-of-ELRANGE %#x maps to PRM", c.ID, uint64(v)))
				}
				continue
			}
			if !inPRM {
				out = append(out, fmt.Sprintf("inv3: core %d ELRANGE %#x maps outside PRM", c.ID, uint64(v)))
				continue
			}
			ent, ok := m.EPC.EntryAt(pa)
			if !ok || !ent.Valid || ent.Owner != cur.EID || ent.Vaddr != v {
				out = append(out, fmt.Sprintf("inv3: core %d %#x maps through foreign/mismatched EPCM entry", c.ID, uint64(v)))
			}
		}
	}
	return out
}
