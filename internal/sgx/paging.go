package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"

	"nestedenclave/internal/epc"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/trace"
)

// This file implements EPC page eviction: EBLOCK → ETRACK (+ shootdowns) →
// EWB, and reload via ELDU. The paper's §IV-E extension matters here: when
// an *outer* enclave's page is evicted, translations for it may live in the
// TLBs of cores running *inner* enclaves, so the thread-tracking mechanism
// must include them — that is exactly what Machine.Tracker abstracts, and
// EWB independently audits every TLB so a broken tracker is caught as an
// error rather than a silent security hole.

// EvictedPage is the encrypted blob EWB hands to the kernel for storage in
// untrusted memory. Confidentiality, integrity and freshness are protected:
// the content is sealed under a paging key with a one-time version slot and a
// per-(owner, vaddr) monotonic version counter, so the kernel can neither
// read, modify, nor replay it — not even by presenting a stale blob of the
// same page from an earlier eviction round.
type EvictedPage struct {
	Owner   isa.EID
	Vaddr   isa.VAddr
	Type    isa.PageType
	Perms   isa.Perm
	Slot    uint64 // version-array slot id (one-time, anti-replay)
	Version uint64 // monotonic per-(owner, vaddr) eviction counter, bound into the AAD
	Cipher  []byte // AES-GCM(page content), nonce bound to Slot
}

// blobKey identifies the version-counter lane of an evicted page: one
// monotonic counter per (owner enclave, page base) pair.
type blobKey struct {
	owner isa.EID
	vaddr isa.VAddr
}

// ErrBlobReplay is the sentinel all blob-freshness failures match via
// errors.Is: the kernel presented a sealed EWB blob that is not the most
// recent eviction of its page (a replay), or one whose one-time slot was
// already consumed (a double load). It is a *detection* — the malicious input
// was rejected before any stale data entered the EPC — and it is permanent:
// retrying the same blob can never succeed.
var ErrBlobReplay = errors.New("sgx: evicted-page blob replay detected")

// BlobReplayError carries the freshness evidence for an ELDU rejection.
type BlobReplayError struct {
	Owner    isa.EID
	Vaddr    isa.VAddr
	Have     uint64 // version presented by the kernel
	Want     uint64 // current counter for this (owner, vaddr)
	Consumed bool   // true when the version matched but the one-time slot was spent
}

func (e *BlobReplayError) Error() string {
	if e.Consumed {
		return fmt.Sprintf("sgx: ELDU: blob for enclave %d vaddr %#x version %d already consumed (replay)", e.Owner, e.Vaddr, e.Have)
	}
	return fmt.Sprintf("sgx: ELDU: stale blob for enclave %d vaddr %#x: version %d, current is %d (replay)", e.Owner, e.Vaddr, e.Have, e.Want)
}

// Is makes errors.Is(err, ErrBlobReplay) true for every freshness rejection.
func (e *BlobReplayError) Is(target error) bool { return target == ErrBlobReplay }

// pagingAEAD builds the AEAD under the platform paging key.
func (m *Machine) pagingAEAD() (cipher.AEAD, error) {
	key := measure.DeriveKey(m.platformSecret, measure.KeySeal, measure.Digest{}, measure.Digest{}, []byte("epc-paging"))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: paging cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: paging gcm: %w", err)
	}
	return aead, nil
}

func pagingNonce(slot uint64) []byte {
	n := make([]byte, 12)
	binary.LittleEndian.PutUint64(n, slot)
	return n
}

func (p *EvictedPage) aad() []byte {
	a := make([]byte, 8*5)
	binary.LittleEndian.PutUint64(a[0:], uint64(p.Owner))
	binary.LittleEndian.PutUint64(a[8:], uint64(p.Vaddr))
	binary.LittleEndian.PutUint64(a[16:], uint64(p.Type))
	binary.LittleEndian.PutUint64(a[24:], uint64(p.Perms))
	binary.LittleEndian.PutUint64(a[32:], p.Version)
	return a
}

// EBlock marks an EPC page blocked: no new TLB translations can be created
// for it (validation fails), the precondition for eviction.
func (m *Machine) EBlock(page int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.EPC.Entry(page)
	if !ent.Valid {
		return isa.GP("EBLOCK: page %d not valid", page)
	}
	if ent.Type == isa.PTSECS {
		return isa.GP("EBLOCK: SECS pages are not evictable in this model")
	}
	ent.Blocked = true
	return nil
}

// ETrack opens a tracking epoch for the enclave and returns the cores whose
// TLBs may hold stale translations and therefore need shootdown IPIs. The
// selection policy is Machine.Tracker — baseline SGX scans threads of the
// enclave itself; the nested extension (package core) adds cores running its
// inner enclaves.
func (m *Machine) ETrack(s *SECS) []*Core {
	m.mu.Lock()
	defer m.mu.Unlock()
	s.trackEpoch++
	return m.Tracker.CoresToShootdown(m, s.EID)
}

// Shootdown flushes the target core's TLB, modelling the effect of the
// TLB-shootdown IPI (on real hardware the IPI causes an AEX, whose exit path
// flushes). Called by the kernel (kos) for each core ETrack returned.
func (m *Machine) Shootdown(c *Core) { m.ShootdownFor(c, isa.NoEnclave) }

// ShootdownFor is Shootdown billing the IPI to the enclave whose page
// tracking caused it (the eviction victim's owner).
func (m *Machine) ShootdownFor(c *Core, eid isa.EID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c.TLB.FlushAll()
	m.Rec.ChargeTo(uint64(eid), c.ID, trace.EvIPI, trace.CostIPI)
}

// EWB evicts a blocked EPC page: verifies no TLB anywhere still maps it
// (the hardware's conservative check — a failed shootdown protocol surfaces
// here as an error), seals content+metadata, frees the page.
func (m *Machine) EWB(page int) (*EvictedPage, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent := m.EPC.Entry(page)
	if !ent.Valid {
		return nil, isa.GP("EWB: page %d not valid", page)
	}
	if !ent.Blocked {
		return nil, isa.GP("EWB: page %d not blocked", page)
	}
	pa := m.EPC.AddrOf(page)
	ppn := pa.PPN()
	// Bill the flush/seal memory traffic to the page's owner and observe the
	// whole eviction as one latency sample. The span opens on NoCore, so it
	// parents under the faulting call the pager is serving (the span hint).
	m.Rec.SetBillHint(uint64(ent.Owner))
	sp := m.Rec.BeginSpan(trace.NoCore, uint64(ent.Owner), "ewb")
	defer sp.End()
	ewbStart := m.Rec.Cycles()
	for _, c := range m.cores {
		for _, e := range c.TLB.Entries() {
			if e.PPN == ppn {
				return nil, isa.GP("EWB: core %d still holds a translation for EPC page %d (incomplete shootdown)", c.ID, page)
			}
		}
	}
	content, err := m.LLC.Read(pa, isa.PageSize)
	if err != nil {
		return nil, err
	}
	if err := m.LLC.FlushRange(pa, isa.PageSize); err != nil {
		return nil, err
	}
	m.vaSlotNext++
	slot := m.vaSlotNext
	if m.blobVer == nil {
		m.blobVer = make(map[blobKey]uint64)
	}
	bk := blobKey{ent.Owner, ent.Vaddr}
	m.blobVer[bk]++
	blob := &EvictedPage{Owner: ent.Owner, Vaddr: ent.Vaddr, Type: ent.Type, Perms: ent.Perms, Slot: slot, Version: m.blobVer[bk]}
	aead, err := m.pagingAEAD()
	if err != nil {
		return nil, err
	}
	blob.Cipher = aead.Seal(nil, pagingNonce(slot), content, blob.aad())
	if m.vaSlots == nil {
		m.vaSlots = make(map[uint64]bool)
	}
	m.vaSlots[slot] = true
	m.MEE.DropPage(pa)
	m.DRAM.Zero(pa, isa.PageSize)
	if ent.Type == isa.PTTCS {
		// Keep the TCS structure; it is restored when the page reloads.
	}
	if err := m.EPC.Free(page); err != nil {
		return nil, err
	}
	m.Rec.ChargeToDetail(uint64(ent.Owner), trace.NoCore, trace.EvEWB, 0, uint64(ent.Vaddr))
	m.Rec.Observe(trace.OpEWB, m.Rec.Cycles()-ewbStart)
	return blob, nil
}

// ELDU reloads an evicted page into a fresh EPC page, verifying integrity
// and freshness. Freshness is double-checked: the blob's monotonic version
// must equal the current counter for its (owner, vaddr) lane, and its
// one-time slot must be unspent. Either mismatch is a typed *BlobReplayError
// (errors.Is ErrBlobReplay) — a detection verdict, not a generic fault.
func (m *Machine) ELDU(blob *EvictedPage) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur := m.blobVer[blobKey{blob.Owner, blob.Vaddr}]; blob.Version != cur {
		return 0, &BlobReplayError{Owner: blob.Owner, Vaddr: blob.Vaddr, Have: blob.Version, Want: cur}
	}
	if !m.vaSlots[blob.Slot] {
		return 0, &BlobReplayError{Owner: blob.Owner, Vaddr: blob.Vaddr, Have: blob.Version, Want: blob.Version, Consumed: true}
	}
	aead, err := m.pagingAEAD()
	if err != nil {
		return 0, err
	}
	content, err := aead.Open(nil, pagingNonce(blob.Slot), blob.Cipher, blob.aad())
	if err != nil {
		return 0, isa.GP("ELDU: integrity check failed: %v", err)
	}
	if _, ok := m.secsByEID[blob.Owner]; !ok {
		return 0, isa.GP("ELDU: owner enclave %d no longer exists", blob.Owner)
	}
	m.Rec.SetBillHint(uint64(blob.Owner))
	sp := m.Rec.BeginSpan(trace.NoCore, uint64(blob.Owner), "eld")
	defer sp.End()
	eldStart := m.Rec.Cycles()
	page, err := m.EPC.Alloc(blob.Owner, blob.Type, blob.Vaddr, blob.Perms)
	if err != nil {
		return 0, isa.GP("ELDU: %v", err)
	}
	if err := m.LLC.Write(m.EPC.AddrOf(page), content); err != nil {
		_ = m.EPC.Free(page)
		return 0, err
	}
	delete(m.vaSlots, blob.Slot)
	m.Rec.ChargeToDetail(uint64(blob.Owner), trace.NoCore, trace.EvELD, 0, uint64(blob.Vaddr))
	m.Rec.Observe(trace.OpELD, m.Rec.Cycles()-eldStart)
	return page, nil
}

// FindRegPage returns, under the machine lock, the index of the valid
// regular EPC page of enclave s recorded at vaddr. Kernel code (which runs on
// its own thread of execution) must use this instead of scanning m.EPC
// directly, which is only safe while holding the instruction lock.
func (m *Machine) FindRegPage(s *SECS, vaddr isa.VAddr) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, i := range m.EPC.PagesOf(s.EID) {
		ent := m.EPC.Entry(i)
		if ent.Type == isa.PTReg && ent.Vaddr == vaddr.PageBase() {
			return i, true
		}
	}
	return 0, false
}

// SnapshotEPCM returns value copies of every valid EPCM entry with its page
// index, taken under the machine lock — the kernel's racy-read-free view for
// victim selection.
func (m *Machine) SnapshotEPCM() []EPCSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EPCSnapshot, 0, m.EPC.NumPages())
	for i := 0; i < m.EPC.NumPages(); i++ {
		if ent := m.EPC.Entry(i); ent.Valid {
			out = append(out, EPCSnapshot{Index: i, Entry: *ent})
		}
	}
	return out
}

// EPCSnapshot is one SnapshotEPCM element: a page index with a copy of its
// EPCM entry.
type EPCSnapshot struct {
	Index int
	Entry epc.Entry
}

// FreeEPCPages returns the free-page count under the machine lock.
func (m *Machine) FreeEPCPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.EPC.FreePages()
}

// auditNoStaleTranslations is a test hook: it walks every TLB and reports
// entries whose physical page is a freed or blocked EPC page.
func (m *Machine) AuditTLBs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bad []string
	for _, c := range m.cores {
		for _, e := range c.TLB.Entries() {
			pa := isa.PAddr(e.PPN << isa.PageShift)
			if !m.DRAM.PageInPRM(pa) {
				continue
			}
			ent, ok := m.EPC.EntryAt(pa)
			if !ok || !ent.Valid || ent.Blocked {
				bad = append(bad, fmt.Sprintf("core %d vpn %#x -> stale EPC ppn %#x", c.ID, e.VPN, e.PPN))
			}
		}
	}
	return bad
}
