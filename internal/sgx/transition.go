package sgx

import (
	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// This file implements the enclave entry/exit instructions. The TLB is
// flushed on *every* protection-domain transition — the mechanism that
// upholds the invariant "TLB must always contain only valid translations".
//
// Suspended outer-enclave context during nested execution lives in the inner
// TCS (the paper: NEENTER "saves the current context ... to a reserved stack
// frame of the entering inner enclave"), so it survives ocall round trips
// and asynchronous exits of the inner enclave.

// Ret returns the saved outer-enclave frame of a nested entry, nil for
// top-level entries.
func (t *TCS) Ret() bool { return t.ret != nil }

// EEnter enters an initialized enclave through the TCS at tcsVaddr.
// With resume=false the TCS must be idle and is claimed; with resume=true
// the caller returns into a TCS it already holds (the ocall-return path).
func (m *Machine) EEnter(c *Core, s *SECS, tcsVaddr isa.VAddr, resume bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.inEnclave {
		return isa.GP("EENTER: core %d already in enclave mode", c.ID)
	}
	if s == nil || !s.Initialized {
		return isa.GP("EENTER: enclave not initialized")
	}
	if reason, ok := m.PoisonedReason(s.EID); ok {
		return isa.MC("EENTER: enclave %d poisoned: %s", s.EID, reason)
	}
	t, err := s.FindTCS(tcsVaddr)
	if err != nil {
		return isa.GP("EENTER: %v", err)
	}
	if resume {
		if !t.Busy {
			return isa.GP("EENTER: resume into idle TCS %#x", uint64(tcsVaddr))
		}
	} else {
		if t.Busy {
			return isa.GP("EENTER: TCS %#x busy", uint64(tcsVaddr))
		}
		if t.ret != nil {
			return isa.GP("EENTER: TCS %#x holds a suspended nested frame", uint64(tcsVaddr))
		}
		t.Busy = true
	}
	c.TLB.FlushAll()
	c.inEnclave = true
	c.cur = s
	c.curTCS = t
	c.TLB.BillEID = uint64(s.EID)
	s.epochEntries[c.ID] = s.trackEpoch
	if resume {
		m.Rec.ChargeTo(uint64(s.EID), c.ID, trace.EvEENTER, trace.CostEENTERResume)
	} else {
		m.Rec.ChargeTo(uint64(s.EID), c.ID, trace.EvEENTER, trace.CostEENTER)
	}
	return nil
}

// EExit leaves enclave mode synchronously. With release=true the TCS is
// freed (the final return of an ecall); release=false keeps it claimed for
// a later resuming EENTER (the ocall path).
//
// EEXIT works from inner and outer enclaves alike (paper Figure 5: inner or
// outer enclaves transit directly to non-enclave mode); a release-exit from
// a nested context without NEEXITing first is a #GP, since it would strand
// the suspended outer frame.
func (m *Machine) EExit(c *Core, release bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.inEnclave {
		return isa.GP("EEXIT: core %d not in enclave mode", c.ID)
	}
	t := c.curTCS
	if release {
		if t.ret != nil {
			return isa.GP("EEXIT: releasing TCS with suspended outer frame (NEEXIT first)")
		}
		t.Busy = false
	}
	c.TLB.FlushAll()
	cur := c.cur
	c.inEnclave = false
	c.cur = nil
	c.curTCS = nil
	c.TLB.BillEID = trace.NoEID
	delete(cur.epochEntries, c.ID)
	m.Rec.ChargeTo(uint64(cur.EID), c.ID, trace.EvEEXIT, trace.CostEEXIT)
	return nil
}

// AEX is an asynchronous enclave exit: a hardware exception or interrupt
// while in enclave mode. The full execution context — including the nested
// frame chain head — is saved into the TCS's state-save area, the register
// file is scrubbed, the TLB flushed, and the core returns to non-enclave
// mode so the kernel's handler can run.
func (m *Machine) AEX(c *Core) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aexLocked(c)
}

func (m *Machine) aexLocked(c *Core) error {
	if !c.inEnclave {
		return isa.GP("AEX: core %d not in enclave mode", c.ID)
	}
	t := c.curTCS
	t.ssa = &savedFrame{regs: c.Regs, cur: c.cur, curTCS: t}
	interrupted := c.cur.EID
	c.Regs.Scrub()
	c.TLB.FlushAll()
	delete(c.cur.epochEntries, c.ID)
	c.inEnclave = false
	c.cur = nil
	c.curTCS = nil
	c.TLB.BillEID = trace.NoEID
	sp := m.Rec.BeginSpan(c.ID, uint64(interrupted), "aex")
	m.Rec.ChargeTo(uint64(interrupted), c.ID, trace.EvAEX, trace.CostAEX)
	sp.End()
	return nil
}

// EResume re-enters an enclave after an AEX, restoring the saved context.
func (m *Machine) EResume(c *Core, t *TCS) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.inEnclave {
		return isa.GP("ERESUME: core %d already in enclave mode", c.ID)
	}
	if t.ssa == nil {
		return isa.GP("ERESUME: TCS has no saved state")
	}
	// Refuse to resume a poisoned enclave *before* consuming the saved
	// state, so the caller can still EmergencyExit/ScrubTCS cleanly.
	if reason, ok := m.PoisonedReason(t.ssa.cur.EID); ok {
		return isa.MC("ERESUME: enclave %d poisoned: %s", t.ssa.cur.EID, reason)
	}
	f := t.ssa
	t.ssa = nil
	c.TLB.FlushAll()
	c.inEnclave = true
	c.cur = f.cur
	c.curTCS = f.curTCS
	c.Regs = f.regs
	c.TLB.BillEID = uint64(f.cur.EID)
	f.cur.epochEntries[c.ID] = f.cur.trackEpoch
	m.Rec.ChargeTo(uint64(f.cur.EID), c.ID, trace.EvEENTER, trace.CostEENTER)
	return nil
}

// --- Microcode support for package core (the nested-enclave extension). ---
//
// The methods below are the state-manipulation halves of NEENTER/NEEXIT.
// The *semantic* checks — association validation, TCS ownership, #GP
// conditions — live in package core with the rest of the paper's
// contribution; these helpers only enforce machine-consistency contracts.

// Atomically runs f with the machine lock held, serializing it against all
// memory accesses and instructions. Package core implements its instructions
// inside this.
func (m *Machine) Atomically(f func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return f()
}

// SwitchToNestedLocked performs NEENTER's context switch: the current
// (outer) context and registers are saved into the inner TCS's reserved
// frame, the TLB is flushed, the inner TCS is claimed, and the core enters
// the inner enclave. Caller holds the machine lock (via Atomically) and has
// validated the transition.
func (c *Core) SwitchToNestedLocked(inner *SECS, t *TCS) {
	t.ret = &enclaveFrame{secs: c.cur, tcs: c.curTCS, regs: c.Regs}
	t.Busy = true
	c.TLB.FlushAll()
	delete(c.cur.epochEntries, c.ID)
	c.inEnclave = true
	c.cur = inner
	c.curTCS = t
	c.TLB.BillEID = uint64(inner.EID)
	inner.epochEntries[c.ID] = inner.trackEpoch
}

// SwitchFromNestedLocked performs NEEXIT's context switch: the register file
// is scrubbed (clearing "all the information of the inner enclave"), the TLB
// flushed, the inner TCS released, and the suspended outer context restored.
// Caller holds the machine lock and has validated the transition.
func (c *Core) SwitchFromNestedLocked() {
	t := c.curTCS
	f := t.ret
	t.ret = nil
	t.Busy = false
	c.Regs.Scrub()
	c.TLB.FlushAll()
	delete(c.cur.epochEntries, c.ID)
	c.cur = f.secs
	c.curTCS = f.tcs
	c.Regs = f.regs
	c.TLB.BillEID = uint64(f.secs.EID)
	f.secs.epochEntries[c.ID] = f.secs.trackEpoch
}

// RetFrameEID returns the EID of the suspended outer enclave saved in the
// TCS, or NoEnclave. Used by the thread-tracking extension.
func (t *TCS) RetFrameEID() isa.EID {
	if t.ret == nil {
		return isa.NoEnclave
	}
	return t.ret.secs.EID
}

// retChainEIDs walks the suspended-frame chain from t outward.
func (t *TCS) retChainEIDs() []isa.EID {
	var out []isa.EID
	for cur := t; cur != nil && cur.ret != nil; cur = cur.ret.tcs {
		out = append(out, cur.ret.secs.EID)
	}
	return out
}
