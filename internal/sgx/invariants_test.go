package sgx_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/sgx"
)

// Property test of the BASELINE validator (Costan & Devadas' invariants
// 1–3, paper §VII-A) under random accesses, transitions and kernel
// page-table attacks. The nested variant (including invariant 4) lives in
// internal/core/invariants_test.go; this one pins the unmodified SGX
// behaviour that nested enclave claims to leave intact.

func auditBaseline(m *sgx.Machine) error {
	if v := m.AuditInvariants(); len(v) > 0 {
		return fmt.Errorf("%s", v[0])
	}
	return nil
}

func TestBaselineInvariantsUnderRandomOperations(t *testing.T) {
	r := newRig(t) // baseline validator: core.Enable never called
	e1, t1 := buildEnclave(t, r.k, r.p, 0x100000, 3)
	e2, _ := buildEnclave(t, r.k, r.p, 0x200000, 2)
	unsec, err := r.p.Mmap(2*isa.PageSize, isa.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	c := r.c

	pool := []isa.VAddr{
		0x100000, 0x101000, 0x102800, // e1
		0x200000, 0x201000, // e2
		unsec, unsec + isa.PageSize,
		0x666000, // unmapped
	}
	var frames []isa.PAddr
	for _, eid := range []isa.EID{e1.EID, e2.EID} {
		for _, p := range r.m.EPC.PagesOf(eid)[:2] {
			frames = append(frames, r.m.EPC.AddrOf(p))
		}
	}
	if pa, ok := r.p.PageTable().Translate(unsec); ok {
		frames = append(frames, pa)
	}

	inEnclave := false
	type step struct {
		Kind  uint8
		Addr  uint8
		Frame uint8
		Write bool
	}
	f := func(steps []step) bool {
		for _, st := range steps {
			switch st.Kind % 4 {
			case 0:
				v := pool[int(st.Addr)%len(pool)]
				if st.Write {
					_ = c.Write(v, []byte{1, 2, 3})
				} else {
					_, _ = c.Read(v, 16)
				}
			case 1:
				if !inEnclave {
					if err := r.m.EEnter(c, e1, t1, false); err == nil {
						inEnclave = true
					}
				}
			case 2:
				if inEnclave {
					if err := r.m.EExit(c, true); err == nil {
						inEnclave = false
					}
				}
			case 3:
				v := pool[int(st.Addr)%len(pool)]
				pa := frames[int(st.Frame)%len(frames)]
				r.p.MapFixed(v.PageBase(), pa.PageBase(), isa.PermRW)
			}
			if err := auditBaseline(r.m); err != nil {
				t.Logf("violation after %+v: %v", st, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestReleaseExitWithPendingFrameRejected pins the #GP on EEXIT(release)
// from a nested context — the machine-level contract core.NEEXIT relies on.
func TestTransitionEdgeCases(t *testing.T) {
	r := newRig(t)
	s, tcsV := buildEnclave(t, r.k, r.p, 0x100000, 1)
	r.enter(t, s, tcsV)
	// Resume-exit (ocall) then a *fresh* EENTER on the same TCS by the same
	// thread must be rejected — resumption is the only way back.
	if err := r.m.EExit(r.c, false); err != nil {
		t.Fatal(err)
	}
	if err := r.m.EEnter(r.c, s, tcsV, false); err == nil {
		t.Fatal("fresh EENTER into ocall-suspended TCS accepted")
	}
	if err := r.m.EEnter(r.c, s, tcsV, true); err != nil {
		t.Fatal(err)
	}
	r.exit(t)
}
