package sgx_test

import (
	"testing"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/pt"
	"nestedenclave/internal/sgx"
)

// verdictOf collapses a validator outcome into a comparable label.
func verdictOf(outcome *sgx.Outcome) string {
	switch {
	case outcome == nil:
		return "ok"
	case outcome.Abort:
		return "abort"
	case outcome.Fault != nil && outcome.Fault.Class == isa.FaultPF:
		return "#PF"
	case outcome.Fault != nil && outcome.Fault.Class == isa.FaultGP:
		return "#GP"
	}
	return "?"
}

// TestBaselineValidateTable walks every branch of the baseline (Figure-2)
// access-validation flow by fabricating PTEs directly — requester mode ×
// EPCM owner match/mismatch × vaddr match/alias × in/out-ELRANGE × page type
// × permission intersection. The nested Figure-6 cross-product lives in
// internal/core; this table pins the baseline semantics the extension builds
// on.
func TestBaselineValidateTable(t *testing.T) {
	r := newRig(t)
	m := r.m
	baseA, baseB := isa.VAddr(0x1000_0000), isa.VAddr(0x2000_0000)
	sA, _ := buildEnclave(t, r.k, r.p, baseA, 2)
	sB, _ := buildEnclave(t, r.k, r.p, baseB, 2)

	// Physical frames of interest.
	frameOf := func(s *sgx.SECS, v isa.VAddr) uint64 {
		for _, i := range m.EPC.PagesOf(s.EID) {
			if ent := m.EPC.Entry(i); ent.Vaddr == v {
				return uint64(m.EPC.AddrOf(i)) >> isa.PageShift
			}
		}
		t.Fatalf("no EPC page at %#x", uint64(v))
		return 0
	}
	aData0 := frameOf(sA, baseA)              // A's data page 0
	aData1 := frameOf(sA, baseA+isa.PageSize) // A's data page 1
	bData0 := frameOf(sB, baseB)              // B's data page 0
	aTCS := frameOf(sA, baseA+2*isa.PageSize) // A's TCS page (non-PTReg)
	// A free EPC frame: valid bit clear in the EPCM.
	var freeEPC uint64
	used := map[int]bool{}
	for _, s := range []*sgx.SECS{sA, sB} {
		for _, i := range m.EPC.PagesOf(s.EID) {
			used[i] = true
		}
	}
	for i := 0; ; i++ {
		if !used[i] {
			freeEPC = uint64(m.EPC.AddrOf(i)) >> isa.PageShift
			break
		}
	}
	// A DRAM frame outside PRM.
	var plain uint64
	for ppn := uint64(1); ; ppn++ {
		if !m.DRAM.PageInPRM(isa.PAddr(ppn << isa.PageShift)) {
			plain = ppn
			break
		}
	}

	// Core 0 runs inside enclave A for the enclave-mode rows; core 1 stays
	// untrusted. Validate mutates nothing, so one entry serves all rows.
	r.enter(t, sA, baseA+2*isa.PageSize)
	inA, host := m.Core(0), m.Core(1)

	tests := []struct {
		name  string
		c     *sgx.Core
		v     isa.VAddr
		ppn   uint64
		perms isa.Perm
		op    isa.Access
		want  string
	}{
		{"pte permission denies first", host, 0x40_0000, plain, isa.PermR, isa.Write, "#PF"},
		{"host to plain DRAM ok", host, 0x40_0000, plain, isa.PermRW, isa.Write, "ok"},
		{"host to PRM aborts", host, 0x40_0000, aData0, isa.PermRW, isa.Read, "abort"},
		{"host to free EPC frame aborts", host, 0x40_0000, freeEPC, isa.PermRW, isa.Read, "abort"},

		{"owner+vaddr match ok", inA, baseA, aData0, isa.PermRW, isa.Write, "ok"},
		{"EPCM strips execute", inA, baseA, aData0, isa.PermRWX, isa.Execute, "#PF"},
		{"vaddr alias within own enclave aborts", inA, baseA, aData1, isa.PermRW, isa.Read, "abort"},
		{"foreign owner aborts (at A's vaddr)", inA, baseA, bData0, isa.PermRW, isa.Read, "abort"},
		{"foreign owner aborts (at B's vaddr)", inA, baseB, bData0, isa.PermRW, isa.Read, "abort"},
		{"TCS page inaccessible", inA, baseA + 2*isa.PageSize, aTCS, isa.PermRW, isa.Read, "abort"},
		{"free EPC frame aborts", inA, baseA, freeEPC, isa.PermRW, isa.Read, "abort"},

		{"ELRANGE vaddr outside PRM faults (evicted)", inA, baseA, plain, isa.PermRW, isa.Read, "#PF"},
		{"enclave to unsecure DRAM ok", inA, 0x40_0000, plain, isa.PermRW, isa.Write, "ok"},
		{"no execute from unsecure memory", inA, 0x40_0000, plain, isa.PermRWX, isa.Execute, "#PF"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pte := pt.PTE{PPN: tc.ppn, Perms: tc.perms, Present: true}
			entry, outcome := m.Validator.Validate(tc.c, tc.v, pte, tc.op)
			if got := verdictOf(outcome); got != tc.want {
				t.Fatalf("got %s, want %s (outcome %+v)", got, tc.want, outcome)
			}
			if tc.want == "ok" && entry.PPN != tc.ppn {
				t.Fatalf("fills ppn %#x, want %#x", entry.PPN, tc.ppn)
			}
		})
	}

	// The blocked-page branch mutates EPCM state, so it runs after the table:
	// blocking B's page turns the foreign-owner abort into #PF (the blocked
	// check precedes the owner check, giving the kernel a fault to repair).
	var bIdx = -1
	for _, i := range m.EPC.PagesOf(sB.EID) {
		if ent := m.EPC.Entry(i); ent.Vaddr == baseB && ent.Type == isa.PTReg {
			bIdx = i
		}
	}
	if err := m.EBlock(bIdx); err != nil {
		t.Fatalf("EBLOCK: %v", err)
	}
	_, outcome := m.Validator.Validate(inA, baseB, pt.PTE{PPN: bData0, Perms: isa.PermRW, Present: true}, isa.Read)
	if got := verdictOf(outcome); got != "#PF" {
		t.Fatalf("blocked page: got %s, want #PF", got)
	}
}
