package mee

import (
	"bytes"
	"testing"
	"testing/quick"

	"nestedenclave/internal/isa"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/trace"
)

func layout() phys.Layout {
	return phys.Layout{DRAMSize: 8 << 20, PRMBase: 2 << 20, PRMSize: 4 << 20}
}

func newEngine() (*Engine, *phys.Memory, *trace.Recorder) {
	mem := phys.MustNew(layout())
	rec := &trace.Recorder{}
	return MustNew(mem, rec), mem, rec
}

func line(fill byte) []byte { return bytes.Repeat([]byte{fill}, isa.LineSize) }

func TestPRMRoundTrip(t *testing.T) {
	e, _, _ := newEngine()
	p := layout().PRMBase
	if err := e.WriteLine(p, line(0x42)); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadLine(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line(0x42)) {
		t.Fatalf("round trip lost data: %v", got[:8])
	}
}

func TestPRMIsCiphertextInDRAM(t *testing.T) {
	e, mem, _ := newEngine()
	p := layout().PRMBase
	pt := line(0x42)
	if err := e.WriteLine(p, pt); err != nil {
		t.Fatal(err)
	}
	raw := mem.Read(p, isa.LineSize)
	if bytes.Equal(raw, pt) {
		t.Fatal("PRM line stored as plaintext")
	}
}

func TestNonPRMPassesThrough(t *testing.T) {
	e, mem, rec := newEngine()
	p := isa.PAddr(0x1000)
	if err := e.WriteLine(p, line(0x17)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.Read(p, isa.LineSize), line(0x17)) {
		t.Fatal("non-PRM line not stored raw")
	}
	if rec.Get(trace.EvMEEEncrypt) != 0 {
		t.Fatal("non-PRM write charged an MEE encryption")
	}
}

func TestTamperDetection(t *testing.T) {
	e, mem, rec := newEngine()
	p := layout().PRMBase + 4096
	if err := e.WriteLine(p, line(0x99)); err != nil {
		t.Fatal(err)
	}
	mem.TamperByte(p+5, 0x01) // physical attacker flips a bit
	_, err := e.ReadLine(p)
	if err == nil {
		t.Fatal("tampered line read succeeded")
	}
	if !isa.IsFault(err, isa.FaultMC) {
		t.Fatalf("tamper raised %v, want #MC", err)
	}
	if rec.Get(trace.EvFaultMC) != 1 {
		t.Fatal("machine check not counted")
	}
}

func TestFreshLineReadsZero(t *testing.T) {
	e, _, _ := newEngine()
	got, err := e.ReadLine(layout().PRMBase + 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, isa.LineSize)) {
		t.Fatalf("fresh PRM line = %v", got[:8])
	}
}

func TestVersioningPreventsCiphertextReplay(t *testing.T) {
	e, mem, _ := newEngine()
	p := layout().PRMBase
	if err := e.WriteLine(p, line(0x01)); err != nil {
		t.Fatal(err)
	}
	old := mem.Read(p, isa.LineSize) // attacker snapshots ciphertext v1
	if err := e.WriteLine(p, line(0x02)); err != nil {
		t.Fatal(err)
	}
	mem.Write(p, old) // attacker replays the stale ciphertext
	if _, err := e.ReadLine(p); err == nil {
		t.Fatal("replayed stale ciphertext accepted")
	}
}

func TestDisabledEngineStoresPlaintext(t *testing.T) {
	e, mem, _ := newEngine()
	e.Enabled = false
	p := layout().PRMBase
	if err := e.WriteLine(p, line(0x33)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.Read(p, isa.LineSize), line(0x33)) {
		t.Fatal("disabled engine still encrypted")
	}
}

func TestDropPageForgetsMetadata(t *testing.T) {
	e, mem, _ := newEngine()
	p := layout().PRMBase
	if err := e.WriteLine(p, line(0x55)); err != nil {
		t.Fatal(err)
	}
	// Page recycled: DRAM zeroed, metadata dropped; the next read must not
	// fail integrity, it must see a fresh zero line.
	mem.Zero(p, isa.PageSize)
	e.DropPage(p)
	got, err := e.ReadLine(p)
	if err != nil {
		t.Fatalf("recycled page read: %v", err)
	}
	if !bytes.Equal(got, make([]byte, isa.LineSize)) {
		t.Fatalf("recycled page not zero: %v", got[:8])
	}
}

func TestUnalignedRejected(t *testing.T) {
	e, _, _ := newEngine()
	if err := e.WriteLine(layout().PRMBase+1, line(0)); err == nil {
		t.Fatal("unaligned write accepted")
	}
	if _, err := e.ReadLine(layout().PRMBase + 7); err == nil {
		t.Fatal("unaligned read accepted")
	}
	if err := e.WriteLine(layout().PRMBase, []byte{1, 2}); err == nil {
		t.Fatal("short write accepted")
	}
}

// Property: for arbitrary line contents and PRM line indices, write-read is
// the identity, and the ciphertext never equals the plaintext.
func TestRoundTripProperty(t *testing.T) {
	e, mem, _ := newEngine()
	f := func(content [isa.LineSize]byte, idx uint16) bool {
		p := layout().PRMBase + isa.PAddr(idx)*isa.LineSize
		if err := e.WriteLine(p, content[:]); err != nil {
			return false
		}
		got, err := e.ReadLine(p)
		if err != nil {
			return false
		}
		return bytes.Equal(got, content[:]) && !bytes.Equal(mem.Read(p, isa.LineSize), content[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
