// Package mee models SGX's Memory Encryption Engine: the hardware block
// between the last-level cache and DRAM that encrypts and integrity-protects
// every cacheline belonging to the Processor Reserved Memory.
//
// Behaviour reproduced from the paper's background (§II-B) and Gueron's MEE
// description:
//
//   - PRM-resident lines exist only as ciphertext in DRAM; encryption is at
//     cacheline (64 B) granularity with a per-line version counter, so a
//     physical attacker reading the bus sees neither plaintext nor repeats.
//   - A hash-tree-like structure validates integrity: any DRAM tampering of
//     a protected line is detected on the next fetch and raises a machine
//     check (drop-and-lock in real hardware; a FaultMC here).
//   - The engine uses one platform key shared by all enclaves — isolation
//     between enclaves is the access-control mechanism's job, not the MEE's
//     (paper §IV-F). Nested enclave therefore adds no MEE complexity.
//   - Non-PRM lines pass through untouched.
//
// The implementation encrypts each line with AES-GCM under a per-boot random
// key, using the line index and a monotonically increasing version counter
// as the nonce, and keeps the 16-byte tags and counters in engine-private
// state (modelling the on-chip tree root plus stolen metadata memory that the
// physical attacker cannot forge).
package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"nestedenclave/internal/chaos"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/phys"
	"nestedenclave/internal/trace"
)

type lineMeta struct {
	version uint64
	tag     [16]byte
	written bool
}

// Engine is the memory encryption engine. It implements cache.Backend.
// Not safe for concurrent use; the machine serializes memory operations.
type Engine struct {
	mem  *phys.Memory
	rec  *trace.Recorder
	aead cipher.AEAD
	meta map[uint64]*lineMeta // line index -> integrity metadata

	// Enabled can be cleared to model a machine without memory encryption
	// (plaintext PRM), used by tests that contrast physical attacks.
	Enabled bool

	// Chaos, when set, injects DRAM bit flips into protected lines as they
	// are fetched — before integrity verification, so every flip surfaces
	// as a detected machine check, never silent corruption.
	Chaos *chaos.Injector

	// Poison, when set, is called with the physical address of a line that
	// failed integrity verification, letting the machine contain the fault
	// to the owning enclave instead of aborting. Called on the memory
	// path, i.e. under the machine lock.
	Poison func(p isa.PAddr)
}

// New builds an engine over the DRAM with a fresh random platform key.
// rec may be nil.
func New(mem *phys.Memory, rec *trace.Recorder) (*Engine, error) {
	key := make([]byte, 16)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("mee: key generation: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("mee: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("mee: gcm: %w", err)
	}
	return &Engine{mem: mem, rec: rec, aead: aead, meta: make(map[uint64]*lineMeta), Enabled: true}, nil
}

// MustNew is New panicking on error, for tests and fixed-configuration
// callers where key-generation failure is unrecoverable anyway.
func MustNew(mem *phys.Memory, rec *trace.Recorder) *Engine {
	e, err := New(mem, rec)
	if err != nil {
		panic(err)
	}
	return e
}

// charge bills MEE line work to the enclave the access path named via
// SetBillHint — the engine itself runs below the protection context.
func (e *Engine) charge(ev trace.Event, cost int64) {
	if e.rec != nil {
		e.rec.ChargeHint(ev, cost)
	}
}

func (e *Engine) nonce(idx, version uint64) []byte {
	n := make([]byte, 12)
	binary.LittleEndian.PutUint64(n[:8], idx)
	binary.LittleEndian.PutUint32(n[8:], uint32(version))
	// Version counters exceed 2^32 only after 4 billion writebacks of a
	// single line; fold the high bits in to keep nonces unique regardless.
	n[11] ^= byte(version >> 32)
	return n
}

// Memory exposes the underlying DRAM (the physical attacker's view).
func (e *Engine) Memory() *phys.Memory { return e.mem }

// WriteLine implements cache.Backend: a dirty-line writeback. PRM lines are
// encrypted and their integrity metadata versioned; others stored raw.
func (e *Engine) WriteLine(p isa.PAddr, data []byte) error {
	if len(data) != isa.LineSize {
		return fmt.Errorf("mee: writeback of %d bytes, want %d", len(data), isa.LineSize)
	}
	if p.Offset()&isa.LineMask != 0 {
		return fmt.Errorf("mee: unaligned line writeback at %#x", uint64(p))
	}
	if !e.mem.InPRM(p) || !e.Enabled {
		e.mem.Write(p, data)
		return nil
	}
	idx := uint64(p) >> isa.LineShift
	m := e.meta[idx]
	if m == nil {
		m = &lineMeta{}
		e.meta[idx] = m
	}
	m.version++
	m.written = true
	ct := e.aead.Seal(nil, e.nonce(idx, m.version), data, nil)
	copy(m.tag[:], ct[isa.LineSize:])
	e.mem.Write(p, ct[:isa.LineSize])
	e.charge(trace.EvMEEEncrypt, trace.CostMEELine)
	return nil
}

// ReadLine implements cache.Backend: a line fetch. PRM lines are decrypted
// and integrity-verified; tampering raises a machine-check fault.
func (e *Engine) ReadLine(p isa.PAddr) ([]byte, error) {
	if p.Offset()&isa.LineMask != 0 {
		return nil, fmt.Errorf("mee: unaligned line fetch at %#x", uint64(p))
	}
	raw := e.mem.Read(p, isa.LineSize)
	if !e.mem.InPRM(p) || !e.Enabled {
		return raw, nil
	}
	idx := uint64(p) >> isa.LineShift
	m := e.meta[idx]
	if m == nil || !m.written {
		// Never written through the engine: architecturally the content of a
		// fresh EPC page is undefined; the simulator returns zeroes (EPC
		// pages are zeroed by EADD/EAUG before use anyway).
		return make([]byte, isa.LineSize), nil
	}
	ct := make([]byte, 0, isa.LineSize+16)
	ct = append(ct, raw...)
	ct = append(ct, m.tag[:]...)
	if e.Chaos.Fire(chaos.SiteDRAMBitFlip) {
		// A disturbance hit this line while it sat in DRAM. Flipping the
		// ciphertext (only on PRM lines, only before Open) guarantees the
		// integrity check catches it — the fault is always detected, never
		// silent corruption.
		bit := e.Chaos.Rand(uint64(isa.LineSize * 8))
		ct[bit/8] ^= 1 << (bit % 8)
	}
	pt, err := e.aead.Open(nil, e.nonce(idx, m.version), ct, nil)
	if err != nil {
		e.charge(trace.EvFaultMC, 0)
		if e.Poison != nil {
			e.Poison(p)
		}
		return nil, isa.MC("MEE integrity failure on line %#x", uint64(p))
	}
	e.charge(trace.EvMEEDecrypt, trace.CostMEELine)
	return pt, nil
}

// DropLine forgets the integrity metadata of the line containing p. Used when
// an EPC page is returned to the free pool so stale metadata does not abort
// reads of a recycled page.
func (e *Engine) DropLine(p isa.PAddr) {
	delete(e.meta, uint64(p)>>isa.LineShift)
}

// DropPage forgets integrity metadata for every line of the page at p.
func (e *Engine) DropPage(p isa.PAddr) {
	base := p.PageBase()
	for off := isa.PAddr(0); off < isa.PageSize; off += isa.LineSize {
		e.DropLine(base + off)
	}
}
