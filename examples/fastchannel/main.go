// Fast communication (paper §VI-C): two peer inner enclaves exchange
// messages through a ring buffer in their shared outer enclave's memory —
// hardware-protected, so no software encryption is needed and the kernel
// has no interposition point.
//
// For contrast, the same exchange runs over the monolithic-SGX path: a
// kernel IPC channel with AES-GCM, where the kernel can silently drop the
// initialization message (the Panoply attack the paper describes in
// §VII-B), leaving the receiver none the wiser.
//
// Run:  go run ./examples/fastchannel
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	ne "nestedenclave"
	"nestedenclave/internal/channel"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
)

const ringSize = 4096

func chanArgs(base isa.VAddr, payload []byte) []byte {
	b := make([]byte, 16, 16+len(payload))
	binary.LittleEndian.PutUint64(b[0:], uint64(base))
	binary.LittleEndian.PutUint64(b[8:], ringSize)
	return append(b, payload...)
}

func registerRing(img *ne.Image) {
	decode := func(args []byte) (*channel.OuterChannel, []byte, error) {
		base := isa.VAddr(binary.LittleEndian.Uint64(args[:8]))
		size := binary.LittleEndian.Uint64(args[8:16])
		ch, err := channel.NewOuter(base, size)
		return ch, args[16:], err
	}
	img.RegisterECall("init", func(env *ne.Env, args []byte) ([]byte, error) {
		ch, _, err := decode(args)
		if err != nil {
			return nil, err
		}
		return nil, ch.Init(env.C)
	})
	img.RegisterECall("send", func(env *ne.Env, args []byte) ([]byte, error) {
		ch, payload, err := decode(args)
		if err != nil {
			return nil, err
		}
		ok, err := ch.Send(env.C, payload)
		if err != nil || !ok {
			return nil, fmt.Errorf("send failed: ok=%v err=%v", ok, err)
		}
		return nil, nil
	})
	img.RegisterECall("recv", func(env *ne.Env, args []byte) ([]byte, error) {
		ch, _, err := decode(args)
		if err != nil {
			return nil, err
		}
		payload, ok, err := ch.Recv(env.C)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{0}, nil
		}
		return append([]byte{1}, payload...), nil
	})
}

func main() {
	sys := ne.NewSystem()
	author := ne.NewAuthor()

	outerImg := ne.NewImage("channel-host", 0x9000_0000, ne.DefaultLayout())
	aImg := ne.NewImage("peer-a", 0x1000_0000, ne.DefaultLayout())
	bImg := ne.NewImage("peer-b", 0x2000_0000, ne.DefaultLayout())
	for _, img := range []*ne.Image{outerImg, aImg, bImg} {
		registerRing(img)
	}

	so := outerImg.Sign(author, nil, []ne.Digest{aImg.Measure(), bImg.Measure()})
	sa := aImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil)
	sb := bImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil)
	outer, err := sys.Load(so)
	if err != nil {
		log.Fatal(err)
	}
	peerA, err := sys.Load(sa)
	if err != nil {
		log.Fatal(err)
	}
	peerB, err := sys.Load(sb)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Associate(peerA, outer); err != nil {
		log.Fatal(err)
	}
	if err := sys.Associate(peerB, outer); err != nil {
		log.Fatal(err)
	}

	base := outerImg.HeapBase()
	if _, err := outer.ECall("init", chanArgs(base, nil)); err != nil {
		log.Fatal(err)
	}

	// --- The nested path: through protected outer-enclave memory. ---
	msg := []byte("INIT: register certificate verification callback")
	if _, err := peerA.ECall("send", chanArgs(base, msg)); err != nil {
		log.Fatal(err)
	}
	// The kernel tries to snoop the channel.
	c := sys.Machine.Core(0)
	if err := sys.Kernel.Schedule(c, sys.Host.Proc); err != nil {
		log.Fatal(err)
	}
	snoop, err := c.Read(base, 48)
	if err != nil {
		log.Fatal(err)
	}
	got, err := peerB.ECall("recv", chanArgs(base, nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outer-enclave channel:")
	fmt.Printf("  peer B received: %v (%q)\n", got[0] == 1, got[1:])
	fmt.Printf("  kernel snoop:    % x ...\n", snoop[:12])

	// --- The monolithic-SGX path: kernel IPC + AES-GCM. ---
	// The kernel selectively drops the very message that registers the
	// verification callback.
	sys.Kernel.IPC.SetAdversary("verify", &kos.IPCAdversary{
		DropIf: func(p []byte) bool { return true },
	})
	key := [16]byte{7}
	tx, err := channel.NewGCM(sys.Kernel.IPC, "verify", key)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := channel.NewGCM(sys.Kernel.IPC, "verify", key)
	if err != nil {
		log.Fatal(err)
	}
	tx.Send(msg)
	_, ok, rerr := rx.Recv()
	fmt.Println("\nGCM-over-kernel-IPC channel (monolithic SGX):")
	fmt.Printf("  peer B received: %v, error: %v\n", ok, rerr)
	fmt.Println("  the drop is silent — the receiver cannot distinguish it from 'nothing sent yet',")
	fmt.Println("  so the certificate check is silently bypassed (the Panoply attack).")

	if ok || !bytes.Equal(got[1:], msg) {
		log.Fatal("unexpected outcome")
	}
}
