// Quickstart: the smallest complete nested-enclave program.
//
// It boots a simulated machine, loads an outer "library" enclave and an
// inner "app" enclave, associates them with NASSO, and demonstrates the
// model's core semantics:
//
//   - the host calls into the outer enclave (ecall), which calls into the
//     inner enclave (n_ecall) without ever leaving protected mode;
//   - the inner enclave reads the outer enclave's memory directly, and
//     calls an outer library function (n_ocall);
//   - the outer enclave CANNOT read the inner enclave's memory;
//   - the untrusted host sees only abort-page 0xFF bytes for both;
//   - the inner enclave proves its position in the hierarchy to a remote
//     challenger with a NEREPORT-based quote.
//
// Run:  go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	ne "nestedenclave"
	"nestedenclave/internal/isa"
)

func main() {
	sys := ne.NewSystem()
	author := ne.NewAuthor()

	outerImg := ne.NewImage("lib", 0x2000_0000, ne.DefaultLayout())
	innerImg := ne.NewImage("app", 0x1000_0000, ne.DefaultLayout())

	var outerData, innerSecret isa.VAddr

	// The outer enclave: a shared "library" exposing one function to its
	// inner enclaves, plus an entry point that seeds some library state.
	outerImg.RegisterNOCall("greet", func(env *ne.Env, args []byte) ([]byte, error) {
		return append([]byte("lib says hi to "), args...), nil
	})
	outerImg.RegisterECall("seed", func(env *ne.Env, args []byte) ([]byte, error) {
		addr, err := env.Malloc(len(args))
		if err != nil {
			return nil, err
		}
		outerData = addr
		return nil, env.Write(addr, args)
	})
	outerImg.RegisterECall("spy_on_inner", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.Read(innerSecret, 32)
	})
	outerImg.RegisterECall("call_inner", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "work", args)
	})

	// The inner enclave: the security-sensitive application.
	innerImg.RegisterECall("work", func(env *ne.Env, args []byte) ([]byte, error) {
		// Keep a secret in inner-enclave memory.
		addr, err := env.Malloc(32)
		if err != nil {
			return nil, err
		}
		innerSecret = addr
		if err := env.Write(addr, []byte("inner-top-secret-0123456789abcd!")); err != nil {
			return nil, err
		}
		// Asymmetric access: read the outer enclave's memory directly.
		shared, err := env.Read(outerData, 24)
		if err != nil {
			return nil, err
		}
		// The print is didactic: it shows the asymmetric read succeeded. The
		// data is the outer enclave's deliberately shared state, not a
		// secret; real enclave code would seal anything leaving the TEE.
		//nescheck:allow boundary didactic demo prints deliberately shared (non-secret) outer state
		fmt.Printf("inner read outer memory:   %q\n", bytes.TrimRight(shared, "\x00"))
		// Call the outer library with plain procedure-call syntax.
		return env.NOCall("greet", args)
	})

	// Sign the images with mutual expectations (the nested signed-file
	// extension) and load them.
	signedOuter := outerImg.Sign(author, nil, []ne.Digest{innerImg.Measure()})
	signedInner := innerImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil)
	outer, err := sys.Load(signedOuter)
	if err != nil {
		log.Fatal(err)
	}
	inner, err := sys.Load(signedInner)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Associate(inner, outer); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded outer+inner and associated them (NASSO)")

	if _, err := outer.ECall("seed", []byte("outer-shared-state")); err != nil {
		log.Fatal(err)
	}
	out, err := outer.ECall("call_inner", []byte("alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ecall -> n_ecall -> n_ocall: %q\n", out)

	// The outer enclave cannot see inner memory.
	spied, err := outer.ECall("spy_on_inner", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outer spying on inner:     % x (abort-page filler)\n", spied[:8])

	// Neither can the host.
	c := sys.Machine.Core(0)
	if err := sys.Kernel.Schedule(c, sys.Host.Proc); err != nil {
		log.Fatal(err)
	}
	hostView, err := c.Read(innerSecret, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host reading inner memory: % x (abort-page filler)\n", hostView)

	// Remote attestation: the inner enclave proves its identity AND its
	// outer association to a challenger.
	qs, err := sys.NewQuotingService()
	if err != nil {
		log.Fatal(err)
	}
	var quote *ne.Quote
	innerImg.RegisterECall("attest", func(env *ne.Env, args []byte) ([]byte, error) {
		var data [64]byte
		copy(data[:], args)
		rep, err := sys.Ext.NEREPORT(env.C, qs.Measurement(), data)
		if err != nil {
			return nil, err
		}
		quote, err = qs.MakeQuote(rep)
		return nil, err
	})
	nonce := []byte("challenger-nonce-42")
	if _, err := inner.ECall("attest", nonce); err != nil {
		log.Fatal(err)
	}
	err = ne.VerifyQuote(qs.PlatformKey(), quote, ne.Expectation{
		Enclave: inner.SECS().MRENCLAVE,
		Outers:  []ne.Digest{outer.SECS().MRENCLAVE},
		Nonce:   nonce,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote quote verified: inner enclave runs inside the expected outer enclave")
}
