// Confinement (paper §VI-A): a TLS echo server whose SSL library contains
// the Heartbleed bug, deployed both ways.
//
// In the monolithic build the library and the application share one enclave
// — the over-read in the heartbeat handler walks straight into the
// application's heap and exfiltrates its secret. In the nested build the
// same buggy library runs in the outer enclave while the application and
// its secret live in an inner enclave the library cannot read.
//
// Run:  go run ./examples/confinement
package main

import (
	"bytes"
	"fmt"
	"log"

	ne "nestedenclave"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/ssl"
)

// envMem adapts the per-call Env to the SSL library's memory interface.
type envMem struct{ env *ne.Env }

func (m *envMem) Read(v isa.VAddr, n int) ([]byte, error) { return m.env.Read(v, n) }
func (m *envMem) Write(v isa.VAddr, b []byte) error       { return m.env.Write(v, b) }
func (m *envMem) Malloc(n int) (isa.VAddr, error)         { return m.env.Malloc(n) }
func (m *envMem) Free(v isa.VAddr) error                  { return m.env.Free(v) }

// deployment wires the vulnerable SSL library into one or two enclaves.
type deployment struct {
	entry *ne.Enclave // where TLS records arrive (hosts the library)
	app   *ne.Enclave // where the application secret lives
}

func registerLibrary(img *ne.Image, srv **ssl.Server, mem *envMem, nested bool) {
	cfg := ssl.Config{Vulnerable: true, MinVersion: ssl.VersionTLS12Like}
	img.RegisterECall("hello", func(env *ne.Env, args []byte) ([]byte, error) {
		mem.env = env
		s, err := ssl.NewServer(cfg, mem)
		if err != nil {
			return nil, err
		}
		*srv = s
		return s.HandleClientHello(args)
	})
	img.RegisterECall("finish", func(env *ne.Env, args []byte) ([]byte, error) {
		mem.env = env
		return nil, (*srv).HandleClientFinished(args)
	})
	img.RegisterECall("record", func(env *ne.Env, args []byte) ([]byte, error) {
		mem.env = env
		handler := func(req []byte) []byte { return req }
		if nested {
			handler = func(req []byte) []byte {
				resp, err := env.NECall(env.E.Inners()[0], "handle", req)
				if err != nil {
					return nil
				}
				return resp
			}
		}
		return (*srv).ProcessRecord(args, handler)
	})
}

func registerApp(img *ne.Image) {
	img.RegisterECall("handle", func(env *ne.Env, args []byte) ([]byte, error) {
		return args, nil
	})
	img.RegisterECall("store_secret", func(env *ne.Env, args []byte) ([]byte, error) {
		// The classic arrangement: a freed low buffer (later reused by the
		// record layer) with the secret living right above it.
		hole, err := env.Malloc(1024)
		if err != nil {
			return nil, err
		}
		addr, err := env.Malloc(len(args))
		if err != nil {
			return nil, err
		}
		if err := env.Write(addr, args); err != nil {
			return nil, err
		}
		return nil, env.Free(hole)
	})
}

func deploy(sys *ne.System, nested bool) (*deployment, error) {
	var srv *ssl.Server
	mem := &envMem{}
	base := uint64(0x1000_0000)
	if nested {
		base = 0x7000_0000 // keep the two deployments' ELRANGEs apart
	}
	if !nested {
		img := ne.NewImage("server", base, ne.DefaultLayout())
		registerLibrary(img, &srv, mem, false)
		registerApp(img)
		e, err := sys.Load(img.Sign(ne.NewAuthor(), nil, nil))
		if err != nil {
			return nil, err
		}
		return &deployment{entry: e, app: e}, nil
	}
	libImg := ne.NewImage("ssl-lib", base, ne.DefaultLayout())
	appImg := ne.NewImage("app", base+0x1000_0000, ne.DefaultLayout())
	registerLibrary(libImg, &srv, mem, true)
	registerApp(appImg)
	author := ne.NewAuthor()
	lib, err := sys.Load(libImg.Sign(author, nil, []ne.Digest{appImg.Measure()}))
	if err != nil {
		return nil, err
	}
	app, err := sys.Load(appImg.Sign(author, []ne.Digest{libImg.Measure()}, nil))
	if err != nil {
		return nil, err
	}
	if err := sys.Associate(app, lib); err != nil {
		return nil, err
	}
	return &deployment{entry: lib, app: app}, nil
}

func attack(d *deployment, secret []byte) ([]byte, error) {
	if _, err := d.app.ECall("store_secret", secret); err != nil {
		return nil, err
	}
	client, err := ssl.NewClient(ssl.Config{MinVersion: ssl.VersionTLS12Like})
	if err != nil {
		return nil, err
	}
	sh, err := d.entry.ECall("hello", client.Hello())
	if err != nil {
		return nil, err
	}
	cf, err := client.HandleServerHello(sh)
	if err != nil {
		return nil, err
	}
	if _, err := d.entry.ECall("finish", cf); err != nil {
		return nil, err
	}
	// Sanity: the server still echoes ordinary traffic.
	rec, _ := client.Send([]byte("ping"))
	resp, err := d.entry.ECall("record", rec)
	if err != nil {
		return nil, err
	}
	if _, pt, err := client.Recv(resp); err != nil || string(pt) != "ping" {
		return nil, fmt.Errorf("echo broken: %q %v", pt, err)
	}
	// The crafted heartbeat.
	hb, err := client.Heartbeat([]byte("x"), 8*1024)
	if err != nil {
		return nil, err
	}
	resp, err = d.entry.ECall("record", hb)
	if err != nil {
		return nil, err
	}
	return client.OpenHeartbeatResponse(resp)
}

func main() {
	secret := []byte("CUSTOMER-RECORD: card=4111-1111-1111-1111 cvv=042")
	sys := ne.NewSystem()

	for _, nested := range []bool{false, true} {
		name := "monolithic"
		if nested {
			name = "nested"
		}
		d, err := deploy(sys, nested)
		if err != nil {
			log.Fatalf("%s deploy: %v", name, err)
		}
		leak, err := attack(d, secret)
		if err != nil {
			log.Fatalf("%s attack: %v", name, err)
		}
		if i := bytes.Index(leak, secret); i >= 0 {
			fmt.Printf("%-10s: HEARTBLEED LEAKED the application secret at offset %d\n", name, i)
		} else {
			fmt.Printf("%-10s: heartbeat over-read returned %d bytes, none of them the secret\n",
				name, len(leak))
		}
	}
	fmt.Println("\nthe same vulnerable library ran in both deployments;")
	fmt.Println("only the enclave boundary between library and application changed.")
}
