// ML-as-a-service (paper §VI-B, Figure 8): one shared SVM library enclave
// serves several mutually distrusting users, each with a private inner
// enclave that decrypts and anonymizes that user's data before the library
// ever sees it.
//
// The example trains one model per user on their own (synthetic) dataset,
// then demonstrates the isolation matrix: each user's raw data is readable
// only inside that user's inner enclave — not by the shared library, not by
// the sibling user, not by the host.
//
// Run:  go run ./examples/mlservice
package main

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/gob"
	"fmt"
	"log"
	"math/rand"

	ne "nestedenclave"
	"nestedenclave/internal/datasets"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/svm"
)

type payload struct {
	X [][]float64
	Y []int
}

func seal(key [16]byte, v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(err)
	}
	block, _ := aes.NewCipher(key[:])
	aead, _ := cipher.NewGCM(block)
	return aead.Seal(nil, make([]byte, aead.NonceSize()), buf.Bytes(), nil)
}

func open(key [16]byte, ct []byte, v any) error {
	block, _ := aes.NewCipher(key[:])
	aead, _ := cipher.NewGCM(block)
	pt, err := aead.Open(nil, make([]byte, aead.NonceSize()), ct, nil)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(pt)).Decode(v)
}

type user struct {
	name    string
	key     [16]byte
	enclave *ne.Enclave
	rawAddr isa.VAddr // where the inner staged this user's raw data
}

func main() {
	sys := ne.NewSystem()
	author := ne.NewAuthor()

	// The shared library enclave, exposing SVM training to its inners.
	libImg := ne.NewImage("libsvm", 0x9000_0000, ne.DefaultLayout())
	models := map[string]*svm.MultiModel{}
	libImg.RegisterNOCall("svm_train", func(env *ne.Env, args []byte) ([]byte, error) {
		var req struct {
			User string
			P    payload
		}
		if err := gob.NewDecoder(bytes.NewReader(args)).Decode(&req); err != nil {
			return nil, err
		}
		mm, err := svm.TrainMulti(svm.Problem{X: req.P.X, Y: req.P.Y}, svm.Param{Kernel: svm.RBF, C: 4})
		if err != nil {
			return nil, err
		}
		models[req.User] = mm
		acc := mm.Accuracy(req.P.X, req.P.Y)
		return []byte(fmt.Sprintf("trained on %d filtered samples, train-accuracy %.0f%%",
			len(req.P.X), acc*100)), nil
	})
	libImg.RegisterECall("probe", func(env *ne.Env, args []byte) ([]byte, error) {
		// The library tries to read a user's raw data directly.
		addr := isa.VAddr(uint64(args[0]) | uint64(args[1])<<8 | uint64(args[2])<<16 | uint64(args[3])<<24 |
			uint64(args[4])<<32 | uint64(args[5])<<40 | uint64(args[6])<<48 | uint64(args[7])<<56)
		return env.Read(addr, 32)
	})

	// Per-user inner enclave images: decrypt, anonymize (drop column 0, the
	// "sensitive" feature), and hand the filtered data to the library.
	users := []*user{
		{name: "alice", key: [16]byte{1}},
		{name: "bob", key: [16]byte{2}},
	}
	userImgs := make([]*ne.Image, len(users))
	for i, u := range users {
		u := u
		img := ne.NewImage("user-"+u.name, uint64(0x1000_0000*(i+1)), ne.DefaultLayout())
		img.RegisterECall("train", func(env *ne.Env, args []byte) ([]byte, error) {
			var p payload
			if err := open(u.key, args, &p); err != nil {
				return nil, err
			}
			// Stage a raw-data sample in inner memory (the probe target).
			addr, err := env.Malloc(32)
			if err != nil {
				return nil, err
			}
			u.rawAddr = addr
			raw := []byte(fmt.Sprintf("RAW[%s] x0=%+.4f y=%d", u.name, p.X[0][0], p.Y[0]))
			if err := env.Write(addr, raw); err != nil {
				return nil, err
			}
			// Anonymize: zero the sensitive column before the library sees
			// anything.
			for _, x := range p.X {
				x[0] = 0
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(struct {
				User string
				P    payload
			}{u.name, p}); err != nil {
				return nil, err
			}
			return env.NOCall("svm_train", buf.Bytes())
		})
		img.RegisterECall("spy", func(env *ne.Env, args []byte) ([]byte, error) {
			other := isa.VAddr(uint64(args[0]) | uint64(args[1])<<8 | uint64(args[2])<<16 |
				uint64(args[3])<<24 | uint64(args[4])<<32 | uint64(args[5])<<40 |
				uint64(args[6])<<48 | uint64(args[7])<<56)
			return env.Read(other, 32)
		})
		userImgs[i] = img
	}

	// Sign and load: the library's certificate admits both user images.
	var userDigests []ne.Digest
	for _, img := range userImgs {
		userDigests = append(userDigests, img.Measure())
	}
	lib, err := sys.Load(libImg.Sign(author, nil, userDigests))
	if err != nil {
		log.Fatal(err)
	}
	for i, u := range users {
		e, err := sys.Load(userImgs[i].Sign(author, []ne.Digest{libImg.Measure()}, nil))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Associate(e, lib); err != nil {
			log.Fatal(err)
		}
		u.enclave = e
	}

	// Each user trains on their own encrypted dataset.
	for i, u := range users {
		d := datasets.Generate(datasets.Spec{
			Name: u.name, Classes: 2, Train: 120, Features: 6,
		}, rand.New(rand.NewSource(int64(i+1))))
		out, err := u.enclave.ECall("train", seal(u.key, payload{X: d.TrainX, Y: d.TrainY}))
		if err != nil {
			log.Fatalf("%s: %v", u.name, err)
		}
		fmt.Printf("%s: %s\n", u.name, out)
	}

	// Isolation matrix: who can read alice's raw data?
	addrArg := make([]byte, 8)
	for i := range addrArg {
		addrArg[i] = byte(uint64(users[0].rawAddr) >> (8 * i))
	}
	allFF := func(b []byte) bool {
		for _, x := range b {
			if x != 0xFF {
				return false
			}
		}
		return true
	}
	libView, err := lib.ECall("probe", addrArg)
	if err != nil {
		log.Fatal(err)
	}
	bobView, err := users[1].enclave.ECall("spy", addrArg)
	if err != nil {
		log.Fatal(err)
	}
	c := sys.Machine.Core(0)
	if err := sys.Kernel.Schedule(c, sys.Host.Proc); err != nil {
		log.Fatal(err)
	}
	hostView, err := c.Read(users[0].rawAddr, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwho can read alice's raw (pre-anonymization) data?\n")
	fmt.Printf("  shared SVM library: blocked=%v\n", allFF(libView))
	fmt.Printf("  user bob:           blocked=%v\n", allFF(bobView))
	fmt.Printf("  untrusted host:     blocked=%v\n", allFF(hostView))
}
