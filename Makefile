# Build and verification targets. tier1 is the gate the roadmap tracks;
# tier2 adds vet and the race detector (the observability layer's concurrent
# ring buffer and histograms are exercised under -race).

GO ?= go

.PHONY: all build tier1 vet race tier2 bench clean

all: tier1

build:
	$(GO) build ./...

tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

tier2:
	$(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
