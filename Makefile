# Build and verification targets. tier1 is the gate the roadmap tracks;
# tier2 adds vet and the race detector (the observability layer's concurrent
# ring buffer and histograms are exercised under -race, as is the cross-core
# eviction/shootdown test in internal/core); tier3 is the differential
# model-checking pass: 5000 randomized schedules against the reference oracle
# plus a short native-fuzz smoke over the op encoding, access validator, and
# report codec. See TESTING.md.

GO ?= go
SIMTEST_SCHEDULES ?= 5000
FUZZTIME ?= 10s

.PHONY: all build tier1 vet race tier2 tier3 fuzz-smoke bench clean

all: tier1

build:
	$(GO) build ./...

tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

tier2:
	$(GO) vet ./... && $(GO) test -race ./...

tier3:
	$(GO) vet ./...
	SIMTEST_SCHEDULES=$(SIMTEST_SCHEDULES) $(GO) test ./internal/simtest -run TestLockstepSchedules -v -count=1
	$(MAKE) fuzz-smoke

fuzz-smoke:
	$(GO) test ./internal/simtest -run '^$$' -fuzz '^FuzzScheduleOps$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sgx -run '^$$' -fuzz '^FuzzAccessValidate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sgx -run '^$$' -fuzz '^FuzzReportParse$$' -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
