# Build and verification targets. tier1 is the gate the roadmap tracks;
# tier2 adds vet, gofmt, the house static-analysis suite (nescheck, see
# DESIGN.md "Static analysis"), the race detector (the observability
# layer's concurrent ring buffer and histograms are exercised under -race, as
# is the cross-core eviction/shootdown test in internal/core), and the
# depth-6 exhaustive-exploration smoke; tier3 is the differential
# model-checking pass: 5000 randomized schedules against the reference
# oracle, the full depth-8 exhaustive enumeration (`make modelcheck`), a
# short native-fuzz smoke over the op encoding, access validator, and report
# codec, plus a chaos-soak smoke (fault injection + self-healing
# supervision, see `make chaos`). See TESTING.md.

GO ?= go
SIMTEST_SCHEDULES ?= 5000
MODELCHECK_DEPTH ?= 8
FUZZTIME ?= 10s
CHAOS_SEED ?= 0xC0FFEE
CHAOS_OPS ?= 2000

ADVERSARY_SEED ?= 0xad5eed

.PHONY: all build tier1 vet lint lint-fast fmt-check race tier2 tier3 fuzz-smoke chaos chaos-smoke adversary adversary-smoke modelcheck modelcheck-smoke perf-gate baselines bench clean

all: tier1

build:
	$(GO) build ./...

tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs nescheck, the house static-analysis suite: nine analyzers
# (determinism, boundary, lockorder, attribution, errcheck, spanpair, plus
# the interprocedural secretflow, atomicsafety, and lockgraph rules over the
# module-wide call graph) that enforce the simulator's own invariants at
# compile time. -stale-allows additionally fails on //nescheck:allow
# directives that no longer suppress anything. `go run ./cmd/nescheck -rules`
# prints the catalog; suppress a finding with //nescheck:allow <rule> <reason>.
lint:
	$(GO) run ./cmd/nescheck -stale-allows ./...

# lint-fast analyzes only the packages with Go files changed vs git HEAD
# (plus their dependency closure) — the edit-check loop during development.
# Cross-package rules see only the subset, so CI and tier2 run full `lint`.
lint-fast:
	$(GO) run ./cmd/nescheck -fast ./...

# fmt-check fails (listing the offenders) when any tracked Go file is not
# gofmt-clean; it never rewrites files.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

tier2: vet fmt-check lint perf-gate modelcheck-smoke adversary-smoke bench
	$(GO) test -race ./...

# perf-gate re-runs the headline experiments (table2, sqlservice, mlservice,
# switchless) and compares their simulated-cycle metrics — histogram
# means/counts, walk and paging counters, total cycles, and the gated extras
# (per-op ocall cycles on both paths, allocations per nested walk, ring
# occupancy) — against the committed baselines/ snapshots. Gated metrics are
# deterministic functions of the cost model and workloads, so the default 5%
# tolerance is pure headroom for intentional drift; regenerate baselines with
# `make baselines` when a cost-model change is deliberate (see
# EXPERIMENTS.md).
perf-gate:
	$(GO) run ./cmd/repro -gate baselines

baselines:
	$(GO) run ./cmd/repro -only table2,sqlservice,mlservice,switchless -json baselines

tier3:
	$(GO) vet ./...
	SIMTEST_SCHEDULES=$(SIMTEST_SCHEDULES) $(GO) test ./internal/simtest -run TestLockstepSchedules -v -count=1
	$(MAKE) modelcheck
	$(MAKE) fuzz-smoke
	$(MAKE) chaos-smoke
	$(MAKE) adversary

# modelcheck exhaustively enumerates every schedule at the 2-core x 2-slot
# scope up to MODELCHECK_DEPTH ops (default 8, ~3 minutes): each
# interleaving is diffed against the oracle and audited against the §VII-A
# invariants. Fails on any divergence (printing the ddmin-minimal schedule
# in the regress_test.go replay format) or if pruning falls below 50% of the
# branch candidates. See TESTING.md "Exhaustive model checking".
modelcheck:
	$(GO) run ./cmd/repro -exhaustive -mc-depth $(MODELCHECK_DEPTH)

# modelcheck-smoke is the depth-6 slice of the same enumeration (~15s),
# folded into tier2 alongside the explorer's own unit tests.
modelcheck-smoke:
	MODELCHECK_DEPTH=6 $(GO) test ./internal/simtest -run 'TestModelCheckSmoke$$' -count=1 -v

fuzz-smoke:
	$(GO) test ./internal/simtest -run '^$$' -fuzz '^FuzzScheduleOps$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sgx -run '^$$' -fuzz '^FuzzAccessValidate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sgx -run '^$$' -fuzz '^FuzzReportParse$$' -fuzztime $(FUZZTIME)

# chaos runs the deterministic fault-injection soak: the nested SQL service
# under DRAM bit flips, EPC-allocation failures, IPC loss/duplication/
# corruption, interrupt storms, and core stalls, with supervised self-healing
# recovery. Override CHAOS_SEED/CHAOS_OPS to replay or lengthen a run.
chaos:
	$(GO) run ./cmd/repro -chaos -seed $(CHAOS_SEED) -ops $(CHAOS_OPS)

# chaos-smoke is the short soak folded into tier3: ~30 seconds of wall clock
# spread across several seeds, each run asserting zero data loss and a clean
# invariant audit.
chaos-smoke:
	CHAOS_OPS=2000 $(GO) test ./internal/bench -run 'TestChaosSoak$$' -count=1 -v
	for seed in 0x1 0x2 0x3; do \
		$(GO) run ./cmd/repro -chaos -seed $$seed -ops 1500 || exit 1; \
	done

# adversary runs the malicious-kernel campaign: every attack strategy in
# internal/adversary's catalog executed end to end, each required to finish
# defended (invariants hold, data correct) or detected (typed error before
# wrong data). The scoreboard lists strategy x verdict x detection latency;
# replay any row with `repro -adversary -strategy S -seed N -ops K`. See
# TESTING.md "Adversarial kernel".
adversary:
	$(GO) run ./cmd/repro -adversary -seed $(ADVERSARY_SEED)
	for seed in 0x1 0x2 0x3; do \
		$(GO) run ./cmd/repro -adversary -seed $$seed || exit 1; \
	done

# adversary-smoke is the single-seed slice folded into tier2: the campaign
# plus the byte-identical replay check, as Go tests.
adversary-smoke:
	$(GO) test ./internal/bench -run 'TestAttackCampaign$$|TestAttackReplayDeterminism$$' -count=1 -v

# bench runs the paper-experiment benchmarks (root package) once each, and
# the transition-path microbenchmarks (internal/bench: ECall, OCall, NECall,
# PageWalk, SwitchlessOCall) with ns/op and allocs/op reporting.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench='ECall|OCall|PageWalk' -benchtime=200x -run=^$$ ./internal/bench

clean:
	$(GO) clean ./...
