// Command nescheck runs the house static-analysis suite (internal/analysis)
// over the module: nine analyzers that enforce the simulator's own
// invariants — deterministic replay, the trusted/untrusted boundary, lock
// ordering, per-enclave cost attribution, surfaced faults, span pairing, and
// the interprocedural rules (secret flow, atomic/guarded field safety, the
// global lock graph) — at compile time. See DESIGN.md, "Static analysis
// (nescheck)".
//
// Usage:
//
//	nescheck [-root dir] [-stale-allows] [./...]   # analyze the module
//	nescheck -fast [./...]     # only packages changed vs git HEAD (+ deps)
//	nescheck -graph            # dump the call/lock graph and exit
//	nescheck -rules            # print the rule catalog
//
// Findings print as file:line:col: rule: message, one per line; the exit
// status is 1 when findings exist, 2 on load errors. Suppress a finding with
// an explicit, reasoned directive: //nescheck:allow <rule> <reason>.
// -stale-allows additionally reports allow directives that no longer
// suppress anything, so suppressions cannot outlive their findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"nestedenclave/internal/analysis"
)

func main() {
	rules := flag.Bool("rules", false, "print the rule catalog and exit")
	root := flag.String("root", "", "module root to analyze (default: the module containing the working directory)")
	staleAllows := flag.Bool("stale-allows", false, "also report //nescheck:allow directives that suppress nothing")
	fast := flag.Bool("fast", false, "analyze only packages with files changed vs git HEAD (plus their dependency closure); cross-package rules see only the subset, so CI still runs the full suite")
	graph := flag.Bool("graph", false, "dump the interprocedural call/lock graph summary and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nescheck [-root dir] [-stale-allows] [-fast] [./...]\n       nescheck -graph\n       nescheck -rules\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		fmt.Println("nescheck rule catalog:")
		for _, a := range analysis.All() {
			kind := "package"
			if a.RunProgram != nil {
				kind = "program"
			}
			fmt.Printf("  %-12s [%s] %s\n", a.Name, kind, a.Doc)
		}
		fmt.Println("\nsuppress with: //nescheck:allow <rule> <reason>  (same line, line above, or before the package clause for the whole file)")
		fmt.Println("program rules run on the module-wide call graph; their findings carry cross-function traces (see TESTING.md)")
		return
	}

	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(os.Stderr, "nescheck: unsupported pattern %q (the suite always analyzes the whole module; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = findModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}

	var pkgs []*analysis.Package
	var err error
	if *fast {
		changed, gerr := changedDirs(dir)
		if gerr != nil {
			fatal(fmt.Errorf("-fast needs a git checkout: %w", gerr))
		}
		if len(changed) == 0 {
			fmt.Fprintln(os.Stderr, "nescheck: no changed Go files vs HEAD")
			return
		}
		modPath, merr := analysis.ModulePathOf(dir)
		if merr != nil {
			fatal(merr)
		}
		pkgs, err = analysis.LoadTreeSubset(dir, modPath, func(pkgPath string) bool {
			rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
			return changed[rel]
		})
	} else {
		pkgs, err = analysis.LoadModule(dir)
	}
	if err != nil {
		fatal(err)
	}

	if *graph {
		analysis.BuildProgram(pkgs).DumpGraph(os.Stdout)
		return
	}

	res := analysis.Analyze(pkgs, analysis.All(), analysis.Options{ReportStale: *staleAllows})
	findings := append(res.Findings, res.Stale...)
	for _, f := range findings {
		if rel, err := filepath.Rel(dir, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nescheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// changedDirs returns the set of module-relative directories (slash-separated,
// "" for the root package) holding Go files that differ from HEAD — staged,
// unstaged, and untracked.
func changedDirs(root string) (map[string]bool, error) {
	out := make(map[string]bool)
	for _, args := range [][]string{
		{"diff", "--name-only", "HEAD"},
		{"ls-files", "--others", "--exclude-standard"},
	} {
		cmd := exec.Command("git", args...)
		cmd.Dir = root
		b, err := cmd.Output()
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasSuffix(line, ".go") || strings.HasSuffix(line, "_test.go") {
				continue
			}
			d := filepath.ToSlash(filepath.Dir(line))
			if d == "." {
				d = ""
			}
			out[d] = true
		}
	}
	return out, nil
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nescheck: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nescheck:", err)
	os.Exit(2)
}
