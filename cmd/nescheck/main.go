// Command nescheck runs the house static-analysis suite (internal/analysis)
// over the module: five analyzers that enforce the simulator's own
// invariants — deterministic replay, the trusted/untrusted boundary, lock
// ordering, per-enclave cost attribution, and surfaced faults — at compile
// time. See DESIGN.md, "Static analysis (nescheck)".
//
// Usage:
//
//	nescheck [-root dir] [./...]    # analyze the module (default: cwd's module)
//	nescheck -rules                 # print the rule catalog
//
// Findings print as file:line:col: rule: message, one per line; the exit
// status is 1 when findings exist, 2 on load errors. Suppress a finding with
// an explicit, reasoned directive: //nescheck:allow <rule> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nestedenclave/internal/analysis"
)

func main() {
	rules := flag.Bool("rules", false, "print the rule catalog and exit")
	root := flag.String("root", "", "module root to analyze (default: the module containing the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nescheck [-root dir] [./...]\n       nescheck -rules\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		fmt.Println("nescheck rule catalog:")
		for _, a := range analysis.All() {
			fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Println("\nsuppress with: //nescheck:allow <rule> <reason>  (same line, line above, or before the package clause for the whole file)")
		return
	}

	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(os.Stderr, "nescheck: unsupported pattern %q (the suite always analyzes the whole module; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = findModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}

	pkgs, err := analysis.LoadModule(dir)
	if err != nil {
		fatal(err)
	}
	findings := analysis.Run(pkgs, analysis.All())
	for _, f := range findings {
		if rel, err := filepath.Rel(dir, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nescheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nescheck: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nescheck:", err)
	os.Exit(2)
}
