// Command nesclave is the simulator's utility CLI:
//
//	nesclave info      # print the machine model and cost model
//	nesclave demo      # run a minimal nested-enclave round trip
//	nesclave selftest  # execute the Table VII attacks and report outcomes
package main

import (
	"fmt"
	"os"

	ne "nestedenclave"
	"nestedenclave/internal/bench"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nesclave <info|demo|selftest>")
	os.Exit(2)
}

func info() {
	cfg := sgx.DefaultConfig()
	fmt.Println("machine model (defaults):")
	fmt.Printf("  cores:          %d\n", cfg.Cores)
	fmt.Printf("  DRAM:           %d MiB\n", cfg.Phys.DRAMSize>>20)
	fmt.Printf("  PRM (EPC):      %d MiB at %#x\n", cfg.Phys.PRMSize>>20, uint64(cfg.Phys.PRMBase))
	fmt.Printf("  LLC:            %d MiB, %d-way\n", cfg.LLC.SizeBytes>>20, cfg.LLC.Ways)
	fmt.Println("cost model (cycles, 4 GHz reference):")
	rows := []struct {
		name string
		c    int64
	}{
		{"EENTER", trace.CostEENTER}, {"EENTER (resume)", trace.CostEENTERResume},
		{"EEXIT", trace.CostEEXIT}, {"NEENTER", trace.CostNEENTER},
		{"NEEXIT", trace.CostNEEXIT}, {"AEX", trace.CostAEX},
		{"TLB flush", trace.CostTLBFlush}, {"page walk", trace.CostPageWalk},
		{"validation step", trace.CostValidateStep}, {"MEE line (64 B)", trace.CostMEELine},
		{"LLC hit", trace.CostLLCHit}, {"DRAM access", trace.CostDRAMAccess},
		{"IPI", trace.CostIPI}, {"AES-GCM fixed", trace.CostGCMFixed},
		{"AES-GCM per 16 B", trace.CostGCMPerBlock},
	}
	for _, r := range rows {
		fmt.Printf("  %-17s %6d (%.2f us)\n", r.name, r.c, float64(r.c)/4000)
	}
}

func demo() error {
	sys := ne.NewSystem()
	author := ne.NewAuthor()
	outerImg := ne.NewImage("lib", 0x2000_0000, ne.DefaultLayout())
	innerImg := ne.NewImage("app", 0x1000_0000, ne.DefaultLayout())
	outerImg.RegisterECall("run", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "work", args)
	})
	innerImg.RegisterECall("work", func(env *ne.Env, args []byte) ([]byte, error) {
		return append([]byte("processed in the inner enclave: "), args...), nil
	})
	outer, err := sys.Load(outerImg.Sign(author, nil, []ne.Digest{innerImg.Measure()}))
	if err != nil {
		return err
	}
	inner, err := sys.Load(innerImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil))
	if err != nil {
		return err
	}
	if err := sys.Associate(inner, outer); err != nil {
		return err
	}
	out, err := outer.ECall("run", []byte("hello"))
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Println("machine events:", sys.Recorder().Counters.String())
	return nil
}

func selftest() error {
	rows, err := bench.TableVII()
	if err != nil {
		return err
	}
	fmt.Println(bench.RenderTableVII(rows))
	for _, r := range rows {
		if !r.Reproduced {
			return fmt.Errorf("attack %q not reproduced", r.Attack)
		}
	}
	fmt.Println("all attacks reproduced: baseline vulnerable, nested enclave protected")
	return nil
}

func main() {
	if len(os.Args) != 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "info":
		info()
	case "demo":
		err = demo()
	case "selftest":
		err = selftest()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nesclave:", err)
		os.Exit(1)
	}
}
