// Command nesclave is the simulator's utility CLI:
//
//	nesclave info              # print the machine model and cost model
//	nesclave demo              # run a minimal nested-enclave round trip
//	nesclave selftest          # execute the Table VII attacks and report outcomes
//	nesclave attack            # run the adversarial-kernel campaign scoreboard
//	nesclave stats             # run the demo workload, print per-enclave counters
//	nesclave trace [-o f.json] # run the demo workload, emit Chrome trace JSON
//	nesclave profile           # profile the nested SQL service: call tree,
//	                           # span/counter agreement, folded stacks, flame JSON
//
// The trace output loads directly in chrome://tracing or
// https://ui.perfetto.dev: each enclave appears as a process lane (pid = EID)
// with EENTER/EEXIT/NEENTER/NEEXIT spans per core.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	ne "nestedenclave"
	"nestedenclave/internal/bench"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nesclave <info|demo|selftest|attack|stats|trace|profile> [args]")
	fmt.Fprintln(os.Stderr, "  attack flags:  -seed N, -v (print per-strategy transcripts)")
	fmt.Fprintln(os.Stderr, "  stats flags:   -n ITERS, -prom (Prometheus text exposition)")
	fmt.Fprintln(os.Stderr, "  trace flags:   -o FILE (default stdout), -n ITERS, -log N (ring capacity)")
	fmt.Fprintln(os.Stderr, "  profile flags: -queries N, -interval CYC, -folded FILE, -o FILE (flame JSON)")
	os.Exit(2)
}

func info() {
	cfg := sgx.DefaultConfig()
	fmt.Println("machine model (defaults):")
	fmt.Printf("  cores:          %d\n", cfg.Cores)
	fmt.Printf("  DRAM:           %d MiB\n", cfg.Phys.DRAMSize>>20)
	fmt.Printf("  PRM (EPC):      %d MiB at %#x\n", cfg.Phys.PRMSize>>20, uint64(cfg.Phys.PRMBase))
	fmt.Printf("  LLC:            %d MiB, %d-way\n", cfg.LLC.SizeBytes>>20, cfg.LLC.Ways)
	fmt.Println("cost model (cycles, 4 GHz reference):")
	rows := []struct {
		name string
		c    int64
	}{
		{"EENTER", trace.CostEENTER}, {"EENTER (resume)", trace.CostEENTERResume},
		{"EEXIT", trace.CostEEXIT}, {"NEENTER", trace.CostNEENTER},
		{"NEEXIT", trace.CostNEEXIT}, {"AEX", trace.CostAEX},
		{"TLB flush", trace.CostTLBFlush}, {"page walk", trace.CostPageWalk},
		{"validation step", trace.CostValidateStep}, {"MEE line (64 B)", trace.CostMEELine},
		{"LLC hit", trace.CostLLCHit}, {"DRAM access", trace.CostDRAMAccess},
		{"IPI", trace.CostIPI}, {"AES-GCM fixed", trace.CostGCMFixed},
		{"AES-GCM per 16 B", trace.CostGCMPerBlock},
	}
	for _, r := range rows {
		fmt.Printf("  %-17s %6d (%.2f us)\n", r.name, r.c, float64(r.c)/trace.CyclesPerUS)
	}
}

// demoWorkload boots the two-enclave demo (outer "lib", inner "app") and runs
// iters round trips of untrusted -> outer ecall -> inner n_ecall -> n_ocall
// back into the outer library, exercising every transition flavour. It
// returns the system for inspection and the last response.
func demoWorkload(sys *ne.System, iters int) ([]byte, error) {
	author := ne.NewAuthor()
	outerImg := ne.NewImage("lib", 0x2000_0000, ne.DefaultLayout())
	innerImg := ne.NewImage("app", 0x1000_0000, ne.DefaultLayout())
	outerImg.RegisterECall("run", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "work", args)
	})
	outerImg.RegisterNOCall("transform", func(env *ne.Env, args []byte) ([]byte, error) {
		out := append([]byte(nil), args...)
		for i := range out {
			out[i] ^= 0x20
		}
		return out, nil
	})
	innerImg.RegisterECall("work", func(env *ne.Env, args []byte) ([]byte, error) {
		// Stage the request on the trusted heap so the round trip exercises
		// the hardware-validated access path (TLB, page walks, LLC, MEE).
		buf, err := env.Malloc(len(args))
		if err != nil {
			return nil, err
		}
		// Free on unwind; a failed free of a trusted-heap scratch buffer is
		// not actionable mid-ecall, so discard explicitly (errcheck-lite
		// flags silent `defer env.Free(buf)` discards).
		defer func() { _ = env.Free(buf) }()
		if err := env.Write(buf, args); err != nil {
			return nil, err
		}
		staged, err := env.Read(buf, len(args))
		if err != nil {
			return nil, err
		}
		// Call back into the outer library (n_ocall) before answering.
		tr, err := env.NOCall("transform", staged)
		if err != nil {
			return nil, err
		}
		return append([]byte("processed in the inner enclave: "), tr...), nil
	})
	outer, err := sys.Load(outerImg.Sign(author, nil, []ne.Digest{innerImg.Measure()}))
	if err != nil {
		return nil, err
	}
	inner, err := sys.Load(innerImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil))
	if err != nil {
		return nil, err
	}
	if err := sys.Associate(inner, outer); err != nil {
		return nil, err
	}
	var out []byte
	for i := 0; i < iters; i++ {
		if out, err = outer.ECall("run", []byte("HELLO")); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func demo() error {
	sys := ne.NewSystem()
	out, err := demoWorkload(sys, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	fmt.Println("machine events:", sys.Recorder().Counters.String())
	return nil
}

// stats runs the demo workload with observation enabled and prints the
// per-enclave counter attribution and latency histograms.
func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	iters := fs.Int("n", 100, "demo round trips to run")
	prom := fs.Bool("prom", false, "emit Prometheus text exposition instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys := ne.NewSystem()
	rec := sys.Recorder()
	rec.EnableObservation(0) // attribution only; no event log needed
	if _, err := demoWorkload(sys, *iters); err != nil {
		return err
	}
	if *prom {
		return trace.WritePrometheus(os.Stdout, rec)
	}

	per := rec.PerEnclave()
	eids := make([]uint64, 0, len(per))
	for eid := range per {
		eids = append(eids, eid)
	}
	sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })

	t := &bench.Table{
		Title:   fmt.Sprintf("per-enclave event counters (%d demo round trips)", *iters),
		Headers: []string{"event"},
		Notes: []string{
			"EID 0 is untrusted execution; attribution follows the billed protection context",
		},
	}
	for _, eid := range eids {
		if eid == trace.NoEID {
			t.Headers = append(t.Headers, "untrusted")
		} else {
			t.Headers = append(t.Headers, fmt.Sprintf("enclave %d", eid))
		}
	}
	for i := 0; i < trace.NumEvents; i++ {
		e := trace.Event(i)
		row := []string{e.String()}
		nonzero := false
		for _, eid := range eids {
			set := per[eid]
			v := set.Get(e)
			if v != 0 {
				nonzero = true
			}
			row = append(row, fmt.Sprintf("%d", v))
		}
		if nonzero {
			t.AddRow(row...)
		}
	}
	fmt.Println(t.String())

	h := &bench.Table{
		Title:   "composite operation latencies (simulated cycles)",
		Headers: []string{"op", "count", "mean", "p50", "p90", "p99"},
		Notes:   []string{"log2 buckets: quantiles are bucket upper bounds (at most 2x over)"},
	}
	for op := 0; op < trace.NumOps; op++ {
		s := rec.Hist(trace.Op(op)).Snapshot()
		if s.Count == 0 {
			continue
		}
		h.AddRow(trace.Op(op).String(),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.0f", s.Mean()),
			fmt.Sprintf("%d", s.Quantile(0.50)),
			fmt.Sprintf("%d", s.Quantile(0.90)),
			fmt.Sprintf("%d", s.Quantile(0.99)))
	}
	fmt.Println(h.String())

	fmt.Printf("total simulated cycles: %d (%.2f us at 4 GHz)\n",
		rec.Cycles(), float64(rec.Cycles())/trace.CyclesPerUS)
	return nil
}

// traceCmd runs the demo workload with the event log enabled and writes the
// Chrome trace_event JSON timeline.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	iters := fs.Int("n", 3, "demo round trips to run")
	logCap := fs.Int("log", 1<<16, "event log capacity (records retained)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys := ne.NewSystem()
	rec := sys.Recorder()
	rec.EnableObservation(*logCap)
	if _, err := demoWorkload(sys, *iters); err != nil {
		return err
	}
	log := rec.Log()
	if log == nil {
		return fmt.Errorf("event log not enabled")
	}
	recs := log.Snapshot()
	b, err := trace.ChromeTrace(recs, trace.CyclesPerUS)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Printf("%s\n", b)
		return nil
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d events (%d bytes) to %s — load in chrome://tracing or ui.perfetto.dev\n",
		len(recs), len(b), *out)
	return nil
}

// profileCmd runs the nested SQL service under span tracing and the
// simulated-cycle sampling profiler, printing the causal call tree and the
// span-vs-histogram agreement check. The folded-stack profile (flamegraph.pl
// input) and a Chrome trace_event flame view are written on request.
func profileCmd(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	queries := fs.Int("queries", 300, "deterministic YCSB-like queries to run")
	interval := fs.Int64("interval", 2000, "profiler sampling interval (simulated cycles)")
	folded := fs.String("folded", "", "write folded-stack profile to FILE (flamegraph.pl input)")
	out := fs.String("o", "", "write Chrome trace_event flame JSON to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := bench.ProfileSQLService(bench.ProfileConfig{
		Queries:  *queries,
		Interval: *interval,
	})
	if err != nil {
		return err
	}
	fmt.Print(p.RenderTree())
	fmt.Print(p.RenderAgreements())
	for _, a := range p.Agreements() {
		if a.RelErr > 0.01 {
			return fmt.Errorf("span/counter agreement for %s off by %.2f%% (tolerance 1%%)", a.Op, 100*a.RelErr)
		}
	}
	if *folded != "" {
		if err := os.WriteFile(*folded, []byte(p.RenderFolded()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d folded stacks to %s\n", len(p.Folded), *folded)
	}
	if *out != "" {
		b, err := trace.SpansToChrome(p.Spans, trace.CyclesPerUS)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans (%d bytes) to %s — load in chrome://tracing or ui.perfetto.dev\n",
			len(p.Spans), len(b), *out)
	}
	return nil
}

func selftest() error {
	rows, err := bench.TableVII()
	if err != nil {
		return err
	}
	fmt.Println(bench.RenderTableVII(rows))
	for _, r := range rows {
		if !r.Reproduced {
			return fmt.Errorf("attack %q not reproduced", r.Attack)
		}
	}
	fmt.Println("all attacks reproduced: baseline vulnerable, nested enclave protected")
	return nil
}

// attack runs the adversarial-kernel campaign: every strategy in the
// catalog, each classified defended or detected. Any breach (or a strategy
// that never lands its attack) is exit status 1.
func attack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	seed := fs.Uint64("seed", 0xad5eed, "campaign seed (same seed replays the same campaign)")
	verbose := fs.Bool("v", false, "print each strategy's attack transcript")
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := bench.RunCampaign(*seed)
	if err != nil {
		return err
	}
	fmt.Println(bench.Scoreboard(results))
	breaches := 0
	for _, r := range results {
		if *verbose {
			fmt.Printf("--- %s ---\n%s", r.Program.Strategy, r.Transcript)
		}
		if r.Verdict == bench.VerdictBreach {
			breaches++
			fmt.Printf("BREACH %s: %v\n", r.Program.Strategy, r.Err)
		}
	}
	if breaches > 0 {
		return fmt.Errorf("%d of %d strategies breached the defend-or-detect contract", breaches, len(results))
	}
	fmt.Printf("campaign clean: %d strategies, every one defended or detected\n", len(results))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "info":
		info()
	case "demo":
		err = demo()
	case "selftest":
		err = selftest()
	case "attack":
		err = attack(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "profile":
		err = profileCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nesclave:", err)
		os.Exit(1)
	}
}
