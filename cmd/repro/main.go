// Command repro regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	repro                      # run everything at default scale
//	repro -only table2,fig11   # a subset
//	repro -full                # paper-scale parameters (slow, needs RAM)
//	repro -list                # list experiment names
//	repro -json results/       # also write BENCH_<name>.json snapshots
//	repro -http :6060          # expose expvar + pprof while running
//	repro -chaos -seed 7       # fault-injection soak (see TESTING.md)
//	repro -adversary           # adversarial-kernel campaign (see TESTING.md)
//	repro -adversary -strategy blob_replay -seed 7 -ops 1   # replay one attack
//	repro -gate baselines      # perf regression gate against committed BENCH_*.json
//	repro -exhaustive          # exhaustive small-scope model checking (see TESTING.md)
//
// Output is printed as aligned text tables; each carries a note with the
// paper's reported numbers for comparison. With -json, every experiment
// additionally persists its merged counter/histogram snapshot (simulated
// cycles, per-event counts, latency distributions) as BENCH_<name>.json in
// the given directory. With -http, the process serves /debug/vars (the
// nesclave_experiments expvar) and /debug/pprof on the given address for
// live inspection of long -full runs.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nestedenclave/internal/adversary"
	"nestedenclave/internal/bench"
	"nestedenclave/internal/simtest"
	"nestedenclave/internal/trace"
	"nestedenclave/internal/ycsb"
)

type experiment struct {
	name string
	desc string
	run  func(full bool) error
}

func experiments() []experiment {
	return []experiment{
		{"table2", "enclave transition latencies", func(full bool) error {
			iters := 100_000
			if full {
				iters = 1_000_000 // the paper's count
			}
			res, err := bench.TableII(iters)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			return nil
		}},
		{"table3", "modified LOC for porting", func(bool) error {
			fmt.Println(bench.RenderTableIII(bench.TableIII()))
			return nil
		}},
		{"table4", "MLS data classification", func(bool) error {
			fmt.Println(bench.TableIV())
			return nil
		}},
		{"table5", "dataset shapes", func(bool) error {
			fmt.Println(bench.TableVRender())
			return nil
		}},
		{"table6", "SQLite YCSB throughput", func(full bool) error {
			cfg := ycsb.DefaultConfig()
			if !full {
				cfg.Operations = 3000
			}
			rows, err := bench.TableVI(cfg, 1)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderTableVI(rows))
			return nil
		}},
		{"table7", "security analysis (executed attacks)", func(bool) error {
			rows, err := bench.TableVII()
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderTableVII(rows))
			return nil
		}},
		{"fig7", "echo server throughput", func(full bool) error {
			msgs := 3000
			if full {
				msgs = 20_000
			}
			rows, err := bench.Figure7(bench.Figure7Chunks(), msgs)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFigure7(rows))
			return nil
		}},
		{"fig9", "LibSVM train/predict", func(full bool) error {
			scale := 0.02
			if full {
				scale = 0.2 // full Table V sizes are hours of SMO; 0.2 preserves the ratios
			}
			rows, err := bench.Figure9(scale)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFigure9(rows, scale))
			return nil
		}},
		{"sqlservice", "nested SQL service under the span profiler", func(full bool) error {
			q := 300
			if full {
				q = 3000
			}
			p, err := bench.ProfileSQLService(bench.ProfileConfig{Queries: q})
			if err != nil {
				return err
			}
			fmt.Print(p.RenderTree())
			fmt.Print(p.RenderAgreements())
			return nil
		}},
		{"mlservice", "nested ML (LibSVM) service", func(full bool) error {
			scale := 0.02
			if full {
				scale = 0.2
			}
			rows, err := bench.Figure9(scale)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFigure9(rows, scale))
			return nil
		}},
		{"fig10", "enclave loading and footprint", func(full bool) error {
			cfg := bench.DefaultFigure10Config()
			if full {
				cfg.Apps = 500
				cfg.SSLOuters = []int{500, 250, 100, 50, 10, 1}
			}
			rows, err := bench.Figure10(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFigure10(rows, cfg))
			return nil
		}},
		{"fig11", "MEE vs GCM channel throughput", func(full bool) error {
			traffic := 0 // 2x footprint
			footprints := bench.Figure11Footprints()
			chunks := bench.Figure11Chunks()
			if !full {
				chunks = []int{64, 1024, 16384, 65536}
			}
			rows, err := bench.Figure11(footprints, chunks, traffic)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFigure11(rows))
			return nil
		}},
		{"switchless", "switchless vs synchronous hot ocall", func(full bool) error {
			iters := 2000
			if full {
				iters = 50_000
			}
			res, err := bench.Switchless(iters)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderSwitchless(res))
			return nil
		}},
		{"ablation", "design-choice ablations", func(full bool) error {
			iters := 20_000
			if !full {
				iters = 5_000
			}
			tr, err := bench.AblationTransitionPath(iters)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderAblationTransition(tr))
			sd, err := bench.AblationShootdown(50)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderAblationShootdown(sd))
			tf, err := bench.AblationTLBFlush(iters)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderAblationTLBFlush(tf))
			dp, err := bench.AblationNestingDepth(nil)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderAblationDepth(dp))
			return nil
		}},
	}
}

// writeSnapshot persists the experiment's merged observability snapshot as
// BENCH_<name>.json in dir.
func writeSnapshot(dir string, snap *bench.ExperimentSnapshot) error {
	b, err := bench.MarshalSnapshot(snap)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+snap.Name+".json")
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// gateExperiments names the headline experiments with committed baselines;
// `repro -gate <dir>` re-runs exactly these.
var gateExperiments = []string{"table2", "sqlservice", "mlservice", "switchless"}

// runGate is the -gate mode: re-run the headline experiments and compare
// their cycle-derived metrics against the BENCH_<name>.json baselines in
// dir, failing on any regression beyond tol.
func runGate(dir string, tol float64) error {
	exps := experiments()
	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	failed := false
	for _, name := range gateExperiments {
		base, err := bench.LoadSnapshot(filepath.Join(dir, "BENCH_"+name+".json"))
		if err != nil {
			return fmt.Errorf("baseline for %s: %w (regenerate with: repro -only %s -json %s)",
				name, err, strings.Join(gateExperiments, ","), dir)
		}
		e, ok := byName[name]
		if !ok {
			return fmt.Errorf("gate experiment %q not defined", name)
		}
		fmt.Printf("--- gate %s ---\n", name)
		bench.BeginExperiment(name)
		runErr := e.run(false)
		snap := bench.EndExperiment()
		if runErr != nil {
			return fmt.Errorf("%s: %w", name, runErr)
		}
		if snap == nil {
			return fmt.Errorf("%s produced no snapshot", name)
		}
		results := bench.CompareGate(base, snap, tol)
		fmt.Print(bench.RenderGate(name, results, false))
		if bench.GateFailed(results) {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("gated metrics regressed beyond tolerance")
	}
	fmt.Println("perf gate: all gated metrics within tolerance")
	return nil
}

// runChaos is the -chaos soak mode: the nested SQL service driven under
// active fault injection with self-healing supervision (see TESTING.md for
// the knob/replay recipe). Exit status 1 when the soak finds a violation.
func runChaos(seed uint64, ops int) error {
	cfg := bench.ChaosConfig{Seed: seed, Ops: ops}
	fmt.Printf("--- chaos soak: seed %#x, %d ops ---\n", cfg.Seed, cfg.Ops)
	rep, err := bench.ChaosSoak(cfg)
	if err != nil {
		return fmt.Errorf("soak did not complete: %w", err)
	}
	fmt.Print(rep)
	if rep.TotalInjected() == 0 {
		return fmt.Errorf("injector fired nothing; soak vacuous")
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%d violations", len(rep.Violations))
	}
	fmt.Printf("replay with: repro -chaos -seed %#x -ops %d\n", cfg.Seed, cfg.Ops)
	return nil
}

// runAdversary is the -adversary mode: the malicious-kernel campaign. With
// no -strategy, every catalog strategy runs and the scoreboard is printed;
// with one, that single attack program runs and its transcript is printed —
// the replay path for a scoreboard row. Exit status 1 on any breach.
func runAdversary(strategy string, seed uint64, ops int, opsSet bool) error {
	if strategy == "" {
		fmt.Printf("--- adversarial kernel campaign: seed %#x ---\n", seed)
		results, err := bench.RunCampaign(seed)
		if err != nil {
			return err
		}
		fmt.Println(bench.Scoreboard(results))
		for _, r := range results {
			if r.Verdict == bench.VerdictBreach {
				return fmt.Errorf("strategy %s breached the defend-or-detect contract: %v",
					r.Program.Strategy, r.Err)
			}
		}
		fmt.Printf("campaign clean; replay with: repro -adversary -seed %#x\n", seed)
		return nil
	}
	s, err := adversary.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	p := bench.DefaultProgram(s, seed)
	if opsSet {
		p.Ops = ops
	}
	res, err := bench.RunAttack(p)
	if err != nil {
		return err
	}
	fmt.Print(res.Transcript)
	fmt.Printf("verdict: %s", res.Verdict)
	if res.Detection != "" {
		fmt.Printf(" (%s, latency %d cycles)", res.Detection, res.DetectLatency)
	}
	fmt.Println()
	if res.Verdict == bench.VerdictBreach {
		return fmt.Errorf("breach: %v", res.Err)
	}
	fmt.Printf("replay with: repro %s\n", p)
	return nil
}

// runExhaustive is the -exhaustive mode: systematic enumeration of every
// schedule at the small 2-core × 2-slot scope up to the depth horizon, each
// interleaving diffed against the oracle and audited against the §VII-A
// invariants (`make modelcheck` drives this at depth 8). Exit status 1 on a
// counterexample — printed in the regress_test.go replay format — or when
// the reduction machinery prunes less than minPrune of the branch
// candidates (a sign the scope outgrew the reductions).
func runExhaustive(depth, maxDepth int, multiOuter, por bool, minPrune float64) error {
	fmt.Printf("--- exhaustive model check: 2 cores x 2 slots, depth %d, nesting %d, multiouter=%v, por=%v ---\n",
		depth, maxDepth, multiOuter, por)
	//nescheck:allow determinism progress reporting records host wall time, not simulated state
	start := time.Now()
	stats, ce := simtest.Explore(simtest.ExploreConfig{
		Depth:      depth,
		MaxDepth:   maxDepth,
		MultiOuter: multiOuter,
		DisablePOR: !por,
	})
	//nescheck:allow determinism progress reporting records host wall time, not simulated state
	fmt.Printf("%s in %v\n", stats.StatsLine(), time.Since(start).Round(time.Millisecond))
	if ce != nil {
		fmt.Println(ce)
		return fmt.Errorf("divergence at depth %d (replay the minimal schedule via regress_test.go)", depth)
	}
	if stats.Truncated {
		return fmt.Errorf("exploration truncated before covering the scope")
	}
	if ratio := stats.PruneRatio(); ratio < minPrune {
		return fmt.Errorf("pruning ratio %.2f below the %.2f floor", ratio, minPrune)
	}
	fmt.Printf("exhaustive pass clean: every interleaving at scope diffed and audited\n")
	return nil
}

func main() {
	full := flag.Bool("full", false, "run at the paper's scale (slow; fig10 needs several GB of RAM)")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiment names and exit")
	jsonDir := flag.String("json", "", "directory to write per-experiment BENCH_<name>.json snapshots")
	httpAddr := flag.String("http", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address")
	chaosMode := flag.Bool("chaos", false, "run the fault-injection soak instead of the experiments")
	chaosSeed := flag.Uint64("seed", 0xC0FFEE, "chaos soak: injector seed (same seed replays the same run)")
	chaosOps := flag.Int("ops", 1000, "chaos soak: number of YCSB operations; adversary: attack op budget")
	advMode := flag.Bool("adversary", false, "run the adversarial-kernel campaign instead of the experiments")
	advStrategy := flag.String("strategy", "", "adversary: run a single strategy ("+strings.Join(adversary.StrategyNames(), ", ")+")")
	gateDir := flag.String("gate", "", "compare gated metrics against BENCH_*.json baselines in this directory (perf regression gate)")
	gateTol := flag.Float64("gate-tol", bench.GateTolerance, "gate: relative regression tolerance")
	exhaustive := flag.Bool("exhaustive", false, "run the exhaustive small-scope model check instead of the experiments")
	mcDepth := flag.Int("mc-depth", 8, "exhaustive: schedule horizon (ops per interleaving)")
	mcMaxDepth := flag.Int("mc-maxdepth", 2, "exhaustive: maximum enclave nesting depth")
	mcMultiOuter := flag.Bool("mc-multiouter", false, "exhaustive: enable the multi-outer lattice extension")
	mcPOR := flag.Bool("mc-por", true, "exhaustive: enable partial-order reduction")
	mcMinPrune := flag.Float64("mc-min-prune", 0.5, "exhaustive: fail below this pruned fraction of branch candidates")
	flag.Parse()

	if *exhaustive {
		if err := runExhaustive(*mcDepth, *mcMaxDepth, *mcMultiOuter, *mcPOR, *mcMinPrune); err != nil {
			fmt.Fprintf(os.Stderr, "modelcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *advMode {
		opsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "ops" {
				opsSet = true
			}
		})
		if err := runAdversary(*advStrategy, *chaosSeed, *chaosOps, opsSet); err != nil {
			fmt.Fprintf(os.Stderr, "adversary: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosMode {
		if err := runChaos(*chaosSeed, *chaosOps); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gateDir != "" {
		if err := runGate(*gateDir, *gateTol); err != nil {
			fmt.Fprintf(os.Stderr, "perf gate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *httpAddr != "" {
		bench.PublishExpvar()
		// The span profiler's output from the most recent sqlservice run:
		// folded stacks (flamegraph.pl/speedscope input) and Chrome
		// trace_event flame data (chrome://tracing, ui.perfetto.dev).
		http.HandleFunc("/debug/nesclave/profile", func(w http.ResponseWriter, _ *http.Request) {
			p := bench.LastProfile()
			if p == nil {
				http.Error(w, "no profile collected yet (run the sqlservice experiment)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, p.RenderFolded())
		})
		http.HandleFunc("/debug/nesclave/flame", func(w http.ResponseWriter, _ *http.Request) {
			p := bench.LastProfile()
			if p == nil {
				http.Error(w, "no profile collected yet (run the sqlservice experiment)", http.StatusNotFound)
				return
			}
			b, err := trace.SpansToChrome(p.Spans, 0)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
		})
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "repro: http endpoint: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoint on %s (/debug/vars, /debug/pprof, /debug/nesclave/{profile,flame})\n", *httpAddr)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "repro: -json dir: %v\n", err)
			os.Exit(2)
		}
	}

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		for n := range want {
			found := false
			for _, e := range exps {
				if e.name == n {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", n)
				os.Exit(2)
			}
		}
	}
	failed := false
	for _, e := range exps {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		fmt.Printf("--- %s: %s ---\n", e.name, e.desc)
		bench.BeginExperiment(e.name)
		//nescheck:allow determinism experiment snapshots record host wall time alongside simulated cycles
		start := time.Now()
		err := e.run(*full)
		snap := bench.EndExperiment()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		if snap != nil {
			//nescheck:allow determinism experiment snapshots record host wall time alongside simulated cycles
			snap.WallMS = float64(time.Since(start).Microseconds()) / 1e3
			if *jsonDir != "" {
				if werr := writeSnapshot(*jsonDir, snap); werr != nil {
					fmt.Fprintf(os.Stderr, "%s: snapshot: %v\n", e.name, werr)
					failed = true
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
