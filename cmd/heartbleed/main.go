// Command heartbleed demonstrates the confinement case study (paper §VI-A)
// interactively: it mounts the CVE-2014-0160 attack against an SSL echo
// server twice — once with the vulnerable library sharing the application's
// enclave (the current SGX model), once with the library confined to an
// outer enclave and the application in an inner enclave — and prints what
// the attacker's heartbeat response contained in each case.
package main

import (
	"bytes"
	"fmt"
	"os"

	"nestedenclave/internal/bench"
	"nestedenclave/internal/ssl"
)

func run() error {
	secret := []byte("TOP-SECRET: user 4242's session token = a1b2c3d4e5f6")

	for _, nested := range []bool{false, true} {
		model := "monolithic enclave (SGX baseline)"
		if nested {
			model = "nested enclave (library confined to the outer enclave)"
		}
		fmt.Printf("=== %s ===\n", model)

		r, err := bench.NewRig(bench.SmallMachine())
		if err != nil {
			return err
		}
		es, err := bench.BuildEchoServer(r, nested, true /* vulnerable OpenSSL build */)
		if err != nil {
			return err
		}
		if _, err := es.App.ECall("plant_secret", secret); err != nil {
			return err
		}
		fmt.Printf("application stored a secret in its enclave heap: %q\n", secret)

		client, err := es.Connect(ssl.Config{MinVersion: ssl.VersionTLS12Like})
		if err != nil {
			return err
		}
		fmt.Println("attacker completed a legitimate TLS handshake")

		req, err := client.Heartbeat([]byte("x"), 16*1024)
		if err != nil {
			return err
		}
		fmt.Println("attacker sent a heartbeat with 1 payload byte, claiming 16384")
		resp, err := es.Entry.ECall("tls_record", req)
		if err != nil {
			return err
		}
		leak, err := client.OpenHeartbeatResponse(resp)
		if err != nil {
			return err
		}
		fmt.Printf("server echoed %d bytes\n", len(leak))
		if i := bytes.Index(leak, secret); i >= 0 {
			fmt.Printf("*** SECRET LEAKED at offset %d: %q ***\n\n", i, leak[i:i+len(secret)])
		} else {
			ones := 0
			for _, b := range leak {
				if b == 0xFF {
					ones++
				}
			}
			fmt.Printf("no secret in the response (%d of %d bytes are 0xFF abort-page filler)\n\n",
				ones, len(leak))
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heartbleed:", err)
		os.Exit(1)
	}
}
