package nestedenclave_test

import (
	"bytes"
	"testing"

	ne "nestedenclave"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/trace"
)

// These tests exercise the public facade end to end, mirroring the README's
// quickstart.

func buildPair(t *testing.T, sys *ne.System) (inner, outer *ne.Enclave, innerImg, outerImg *ne.Image) {
	t.Helper()
	author := ne.NewAuthor()
	outerImg = ne.NewImage("lib", 0x2000_0000, ne.DefaultLayout())
	innerImg = ne.NewImage("app", 0x1000_0000, ne.DefaultLayout())
	outerImg.RegisterNOCall("double", func(env *ne.Env, args []byte) ([]byte, error) {
		return append(args, args...), nil
	})
	outerImg.RegisterECall("dispatch", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NECall(env.E.Inners()[0], "work", args)
	})
	innerImg.RegisterECall("work", func(env *ne.Env, args []byte) ([]byte, error) {
		return env.NOCall("double", args)
	})
	var err error
	if outer, err = sys.Load(outerImg.Sign(author, nil, []ne.Digest{innerImg.Measure()})); err != nil {
		t.Fatal(err)
	}
	if inner, err = sys.Load(innerImg.Sign(author, []ne.Digest{outerImg.Measure()}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Associate(inner, outer); err != nil {
		t.Fatal(err)
	}
	return inner, outer, innerImg, outerImg
}

func TestSystemRoundTrip(t *testing.T) {
	sys := ne.NewSystem()
	_, outer, _, _ := buildPair(t, sys)
	out, err := outer.ECall("dispatch", []byte("ab"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "abab" {
		t.Fatalf("round trip returned %q", out)
	}
	if sys.Recorder().Get(trace.EvNECall) == 0 {
		t.Fatal("no n_ecall recorded")
	}
}

func TestSystemOptions(t *testing.T) {
	// Baseline system: no nesting support.
	sys := ne.NewSystem(ne.Options{DisableNesting: true})
	if sys.Ext != nil {
		t.Fatal("baseline system has a nesting extension")
	}
	author := ne.NewAuthor()
	img := ne.NewImage("solo", 0x1000_0000, ne.DefaultLayout())
	img.RegisterECall("noop", func(env *ne.Env, args []byte) ([]byte, error) { return args, nil })
	e, err := sys.Load(img.Sign(author, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall("noop", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Association must fail without the extension.
	img2 := ne.NewImage("solo2", 0x2000_0000, ne.DefaultLayout())
	e2, err := sys.Load(img2.Sign(author, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Associate(e2, e); err == nil {
		t.Fatal("associate succeeded on a baseline machine")
	}
}

func TestQuoteFlowThroughFacade(t *testing.T) {
	sys := ne.NewSystem()
	inner, outer, innerImg, _ := buildPair(t, sys)
	qs, err := sys.NewQuotingService()
	if err != nil {
		t.Fatal(err)
	}
	var quote *ne.Quote
	innerImg.RegisterECall("attest", func(env *ne.Env, args []byte) ([]byte, error) {
		rep, err := sys.Ext.NEREPORT(env.C, qs.Measurement(), [64]byte{1})
		if err != nil {
			return nil, err
		}
		quote, err = qs.MakeQuote(rep)
		return nil, err
	})
	if _, err := inner.ECall("attest", nil); err != nil {
		t.Fatal(err)
	}
	err = ne.VerifyQuote(qs.PlatformKey(), quote, ne.Expectation{
		Enclave: inner.SECS().MRENCLAVE,
		Outers:  []ne.Digest{outer.SECS().MRENCLAVE},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHostCannotReadEnclaveHeap(t *testing.T) {
	sys := ne.NewSystem()
	inner, _, innerImg, _ := buildPair(t, sys)
	var addr uint64
	innerImg.RegisterECall("stash", func(env *ne.Env, args []byte) ([]byte, error) {
		a, err := env.Malloc(len(args))
		if err != nil {
			return nil, err
		}
		addr = uint64(a)
		return nil, env.Write(a, args)
	})
	secret := []byte("facade-level-secret")
	if _, err := inner.ECall("stash", secret); err != nil {
		t.Fatal(err)
	}
	c := sys.Machine.Core(0)
	if err := sys.Kernel.Schedule(c, sys.Host.Proc); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(isa.VAddr(addr), len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got, secret[:4]) {
		t.Fatal("host read enclave heap")
	}
}
