// Package nestedenclave is the public API of the nested-enclave simulator:
// a software reproduction of "Nested Enclave: Supporting Fine-grained
// Hierarchical Isolation with SGX" (Park et al., ISCA 2020).
//
// A System bundles the simulated SGX machine (EPC, EPCM, per-core TLBs,
// cache + memory encryption engine), the untrusted kernel, the
// nested-enclave hardware extension, and an SDK host process. The typical
// flow mirrors the paper's Figure 4:
//
//	sys := nestedenclave.NewSystem()
//	author := nestedenclave.NewAuthor()
//
//	outerImg := nestedenclave.NewImage("lib", 0x2000_0000, nestedenclave.DefaultLayout())
//	innerImg := nestedenclave.NewImage("app", 0x1000_0000, nestedenclave.DefaultLayout())
//	// ... RegisterECall / RegisterNOCall on the images ...
//
//	outer, _ := sys.Load(outerImg.Sign(author, nil, []nestedenclave.Digest{innerImg.Measure()}))
//	inner, _ := sys.Load(innerImg.Sign(author, []nestedenclave.Digest{outerImg.Measure()}, nil))
//	_ = sys.Associate(inner, outer) // NASSO
//
//	out, _ := outer.ECall("entry", args) // may NECall into inner, etc.
//
// Inside enclave code, the Env provides memory access through the
// hardware-validated path, the trusted heap, ocalls to the host, and the
// paper's n_ecall/n_ocall transitions between outer and inner enclaves.
package nestedenclave

import (
	"nestedenclave/internal/attest"
	"nestedenclave/internal/channel"
	"nestedenclave/internal/core"
	"nestedenclave/internal/isa"
	"nestedenclave/internal/kos"
	"nestedenclave/internal/measure"
	"nestedenclave/internal/sdk"
	"nestedenclave/internal/sgx"
	"nestedenclave/internal/trace"
)

// Re-exported building blocks. The aliases keep one import path for users
// while the implementation stays in focused internal packages.
type (
	// Machine is the simulated SGX processor + DRAM.
	Machine = sgx.Machine
	// MachineConfig sizes the machine.
	MachineConfig = sgx.Config
	// Kernel is the simulated (untrusted) operating system.
	Kernel = kos.Kernel
	// Extension is the nested-enclave instruction set handle.
	Extension = core.Extension
	// NestingConfig selects two-level / multi-level / multi-outer nesting.
	NestingConfig = core.Config
	// Host is an application process's untrusted runtime.
	Host = sdk.Host
	// Image is a declarative enclave image.
	Image = sdk.Image
	// Layout sizes an image.
	Layout = sdk.Layout
	// SignedImage is an author-signed enclave file.
	SignedImage = sdk.SignedImage
	// Enclave is a loaded enclave handle.
	Enclave = sdk.Enclave
	// Env is the in-enclave execution environment.
	Env = sdk.Env
	// TrustedFunc is an enclave entry point.
	TrustedFunc = sdk.TrustedFunc
	// HostFunc is an untrusted ocall handler.
	HostFunc = sdk.HostFunc
	// Author signs enclave images.
	Author = measure.Author
	// Digest is a 256-bit measurement (MRENCLAVE/MRSIGNER).
	Digest = measure.Digest
	// NestedReport is NEREPORT's output.
	NestedReport = core.NestedReport
	// Quote is a remotely-verifiable attestation statement.
	Quote = attest.Quote
	// QuotingService converts nested reports into quotes.
	QuotingService = attest.QuotingService
	// Expectation is a challenger's quote policy.
	Expectation = attest.Expectation
	// OuterChannel is the fast inter-enclave channel through outer memory.
	OuterChannel = channel.OuterChannel
	// GCMChannel is the encrypted channel over untrusted IPC.
	GCMChannel = channel.GCMChannel
	// Recorder exposes the machine's event counters and cycle clock.
	Recorder = trace.Recorder
)

// DefaultLayout returns a small enclave layout.
func DefaultLayout() Layout { return sdk.DefaultLayout() }

// NewImage declares an enclave image whose ELRANGE starts at base.
func NewImage(name string, base uint64, l Layout) *Image {
	return sdk.NewImage(name, isa.VAddr(base), l)
}

// NewAuthor generates a signing identity (panics only on entropy failure).
func NewAuthor() *Author { return measure.MustNewAuthor() }

// TwoLevel is the paper's base nesting configuration.
func TwoLevel() NestingConfig { return core.TwoLevel() }

// Options configure NewSystem.
type Options struct {
	// Machine sizes the simulated machine; zero value means the default
	// 4-core, 128 MiB-PRM, 8 MiB-LLC configuration.
	Machine MachineConfig
	// Nesting selects the nesting model; zero value means the paper's
	// two-level single-outer model.
	Nesting NestingConfig
	// DisableNesting builds a baseline-SGX system (no new instructions,
	// baseline access validation) — the paper's monolithic comparison.
	DisableNesting bool
}

// System is a booted simulator: machine + kernel + nesting extension + one
// host process.
type System struct {
	Machine *Machine
	Kernel  *Kernel
	// Ext is nil when nesting is disabled.
	Ext  *Extension
	Host *Host
}

// NewSystem boots a simulator with the given options (pass none for the
// defaults). It panics if the machine configuration is invalid; use
// NewSystemErr to handle that as an error.
func NewSystem(opts ...Options) *System {
	s, err := NewSystemErr(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemErr is NewSystem returning configuration errors instead of
// panicking.
func NewSystemErr(opts ...Options) (*System, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	mc := o.Machine
	if mc.Cores == 0 {
		mc = sgx.DefaultConfig()
	}
	m, err := sgx.New(mc)
	if err != nil {
		return nil, err
	}
	var ext *Extension
	if !o.DisableNesting {
		nc := o.Nesting
		if nc.MaxDepth == 0 && !nc.AllowMultipleOuters {
			nc = core.TwoLevel()
		}
		ext = core.Enable(m, nc)
	}
	k := kos.New(m)
	return &System{Machine: m, Kernel: k, Ext: ext, Host: sdk.NewHost(k, ext)}, nil
}

// Load builds and initializes an enclave in the system's host process.
func (s *System) Load(img *SignedImage) (*Enclave, error) { return s.Host.Load(img) }

// Associate binds an inner enclave to an outer enclave (NASSO).
func (s *System) Associate(inner, outer *Enclave) error { return s.Host.Associate(inner, outer) }

// RegisterOCall installs an untrusted host service function.
func (s *System) RegisterOCall(name string, fn HostFunc) { s.Host.RegisterOCall(name, fn) }

// Recorder returns the machine's counters and simulated-cycle clock.
func (s *System) Recorder() *Recorder { return s.Machine.Rec }

// NewQuotingService provisions remote attestation on the system. Requires
// nesting.
func (s *System) NewQuotingService() (*QuotingService, error) {
	return attest.NewQuotingService(s.Ext)
}

// VerifyQuote is the remote challenger's check.
func VerifyQuote(platformKey []byte, q *Quote, want Expectation) error {
	return attest.Verify(platformKey, q, want)
}
